//! Cycle-level simulator of the collision-detection accelerator with the
//! Collision Prediction Unit (paper Fig. 12).
//!
//! The modeled pipeline per motion-environment check:
//!
//! 1. the **Scheduler** feeds sample poses in CSP order [43];
//! 2. the **OBB Generation Unit** produces one link OBB per initiation
//!    interval after a pipeline-fill latency;
//! 3. with a COPU, each OBB's center is hashed and looked up in the **CHT**,
//!    then steered into **QCOLL** or **QNONCOLL**;
//! 4. the **Query Dispatcher** issues QCOLL entries to free **CDUs** first,
//!    and QNONCOLL entries only when that queue is full or all of the
//!    motion's poses have been generated (the paper's energy-biased policy);
//! 5. CDUs run cascaded early-exit obstacle tests; the **Query Update Unit**
//!    writes outcomes back to the CHT; a colliding outcome terminates the
//!    motion check and flushes remaining work.
//!
//! The baseline configuration (no COPU) dispatches OBBs in CSP order
//! directly — the Shah et al. accelerator the paper compares against.

use crate::energy::{AreaModel, EnergyBreakdown, EnergyModel};
use crate::observe::{AccelObserver, QueueKind};
use copred_core::hash::CollisionHash;
use copred_core::{Cht, ChtParams, CoordHash};
use copred_geometry::Vec3;
use copred_kinematics::csp_order;
use copred_trace::MotionTrace;
use std::collections::VecDeque;

/// Accelerator configuration.
#[derive(Debug, Clone)]
pub struct AccelConfig {
    /// Number of CDUs.
    pub n_cdus: usize,
    /// Whether the COPU is present.
    pub with_copu: bool,
    /// Oracle mode: the predictor returns ground truth with zero latency and
    /// no CHT traffic — the paper's limit study (§III-A).
    pub oracle: bool,
    /// CHT sizing and policy (ignored without COPU).
    pub cht_params: ChtParams,
    /// QCOLL capacity (paper: 8).
    pub qcoll_len: usize,
    /// QNONCOLL capacity (paper: 56).
    pub qnoncoll_len: usize,
    /// CSP stride over poses.
    pub csp_step: usize,
    /// OBB Generation Unit pipeline-fill latency (cycles).
    pub obbgen_latency: u64,
    /// Cycles between successive OBB outputs.
    pub obbgen_ii: u64,
    /// COPU latency: hash plus CHT read (cycles).
    pub copu_latency: u64,
    /// Fixed CDU occupancy per CDQ (cycles).
    pub cdu_base_cycles: u64,
    /// Additional CDU cycles per obstacle-pair test.
    pub cdu_per_obstacle: u64,
    /// RNG seed for the CHT's `U` policy.
    pub seed: u64,
}

impl AccelConfig {
    /// The baseline accelerator (CSP scheduling, no prediction) with
    /// `n_cdus` CDUs.
    pub fn baseline(n_cdus: usize) -> Self {
        AccelConfig {
            n_cdus,
            with_copu: false,
            oracle: false,
            cht_params: ChtParams::paper_arm(),
            qcoll_len: 8,
            qnoncoll_len: 56,
            csp_step: 5,
            obbgen_latency: 16,
            obbgen_ii: 1,
            copu_latency: 2,
            cdu_base_cycles: 6,
            cdu_per_obstacle: 4,
            seed: 7,
        }
    }

    /// A COPU.x configuration: `n_cdus` CDUs plus the prediction unit.
    pub fn copu(n_cdus: usize, cht_params: ChtParams) -> Self {
        AccelConfig {
            with_copu: true,
            cht_params,
            ..AccelConfig::baseline(n_cdus)
        }
    }

    /// The Oracle limit-study configuration: perfect prediction (100%
    /// precision and recall) with zero prediction latency.
    pub fn oracle(n_cdus: usize) -> Self {
        AccelConfig {
            with_copu: true,
            oracle: true,
            copu_latency: 0,
            ..AccelConfig::baseline(n_cdus)
        }
    }
}

/// Countable events for the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelEvents {
    /// CDQs dispatched to CDUs.
    pub cdqs: u64,
    /// Obstacle-pair tests performed inside dispatched CDQs.
    pub obstacle_tests: u64,
    /// CHT prediction reads.
    pub cht_reads: u64,
    /// CHT outcome writes.
    pub cht_writes: u64,
    /// Queue pushes and pops.
    pub queue_ops: u64,
    /// Poses processed by the OBB Generation Unit.
    pub poses_generated: u64,
}

impl AccelEvents {
    /// Merges another event count into this one.
    pub fn merge(&mut self, o: &AccelEvents) {
        self.cdqs += o.cdqs;
        self.obstacle_tests += o.obstacle_tests;
        self.cht_reads += o.cht_reads;
        self.cht_writes += o.cht_writes;
        self.queue_ops += o.queue_ops;
        self.poses_generated += o.poses_generated;
    }
}

/// Result of simulating one motion check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionSimResult {
    /// Whether a collision was found.
    pub colliding: bool,
    /// End-to-end latency in cycles.
    pub latency_cycles: u64,
    /// Events for energy accounting.
    pub events: AccelEvents,
}

/// Aggregate result over a trace (one planning query or a whole workload).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccelRunResult {
    /// Motions simulated.
    pub motions: u64,
    /// Motions found colliding.
    pub colliding_motions: u64,
    /// Sum of per-motion latencies (motions are processed back-to-back).
    pub total_cycles: u64,
    /// Aggregated events.
    pub events: AccelEvents,
}

impl AccelRunResult {
    /// Total CDQs executed — the Fig. 15 metric.
    pub fn cdqs_executed(&self) -> u64 {
        self.events.cdqs
    }

    /// Mean motion-check latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.motions == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.motions as f64
        }
    }

    /// Dynamic + leakage energy in pJ under the given models and area.
    pub fn energy_pj(&self, em: &EnergyModel, area_mm2: f64) -> f64 {
        let e = &self.events;
        e.cdqs as f64 * em.cdq_base_pj
            + e.obstacle_tests as f64 * em.obstacle_test_pj
            + e.poses_generated as f64 * em.obbgen_pose_pj
            + e.queue_ops as f64 * em.queue_op_pj
            + e.cht_reads as f64 * 0.0 // read energy added below with SRAM sizing
            + self.total_cycles as f64 * em.leakage_pj_per_cycle_mm2 * area_mm2
    }

    /// Full energy including CHT SRAM accesses for the given CHT sizing.
    pub fn energy_with_cht_pj(&self, em: &EnergyModel, area_mm2: f64, cht: &ChtParams) -> f64 {
        let acc = em.sram.access_energy_pj(cht.entries(), cht.entry_bits());
        self.energy_pj(em, area_mm2) + (self.events.cht_reads + self.events.cht_writes) as f64 * acc
    }

    /// The same energy as [`AccelRunResult::energy_with_cht_pj`], itemized
    /// per component; the breakdown's `total_pj()` matches it bit-for-bit.
    pub fn energy_breakdown(
        &self,
        em: &EnergyModel,
        area_mm2: f64,
        cht: &ChtParams,
    ) -> EnergyBreakdown {
        let e = &self.events;
        let acc = em.sram.access_energy_pj(cht.entries(), cht.entry_bits());
        EnergyBreakdown {
            cdus_pj: e.cdqs as f64 * em.cdq_base_pj + e.obstacle_tests as f64 * em.obstacle_test_pj,
            obbgen_pj: e.poses_generated as f64 * em.obbgen_pose_pj,
            queues_pj: e.queue_ops as f64 * em.queue_op_pj,
            cht_pj: (e.cht_reads + e.cht_writes) as f64 * acc,
            leakage_pj: self.total_cycles as f64 * em.leakage_pj_per_cycle_mm2 * area_mm2,
        }
    }
}

/// The accelerator simulator. Owns the CHT so history persists across the
/// motions of one planning query; call [`AccelSim::reset_query`] between
/// queries (the hardware clears the CHT because obstacles may move).
#[derive(Debug)]
pub struct AccelSim {
    cfg: AccelConfig,
    hash: CoordHash,
    cht: Cht,
}

/// Safety cap on simulated cycles per motion.
const CYCLE_CAP: u64 = 50_000_000;

impl AccelSim {
    /// Creates a simulator; `hash` must match the robot/workspace the trace
    /// was captured on (use [`CoordHash::paper_default`]).
    pub fn new(cfg: AccelConfig, hash: CoordHash) -> Self {
        let cht = Cht::new(cfg.cht_params, cfg.seed);
        AccelSim { cfg, hash, cht }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Clears prediction history (new planning query / environment change).
    pub fn reset_query(&mut self) {
        self.cht.reset();
    }

    fn code(&self, center: Vec3) -> u64 {
        // The hash consumes only the center for COORD; the config argument
        // is unused by this family, so a dummy zero-DOF config suffices.
        let dummy = copred_kinematics::Config::zeros(0);
        self.hash.code(&copred_core::HashInput {
            config: &dummy,
            center,
        })
    }

    /// Simulates one motion-environment check.
    pub fn run_motion(&mut self, motion: &MotionTrace) -> MotionSimResult {
        self.run_motion_probe(motion, None)
    }

    /// Simulates one motion-environment check while feeding `obs` per-cycle
    /// stall attribution, queue occupancy, and (when the observer carries a
    /// trace) simulated-time trace events.
    pub fn run_motion_observed(
        &mut self,
        motion: &MotionTrace,
        obs: &mut AccelObserver,
    ) -> MotionSimResult {
        self.run_motion_probe(motion, Some(obs))
    }

    fn run_motion_probe(
        &mut self,
        motion: &MotionTrace,
        mut obs: Option<&mut AccelObserver>,
    ) -> MotionSimResult {
        let _motion_span = copred_obs::span("accel", "run_motion");
        let cfg = &self.cfg;
        let n = motion.cdqs.len();
        let n_poses = motion.poses.len().max(
            motion
                .cdqs
                .iter()
                .map(|c| c.pose_idx as usize + 1)
                .max()
                .unwrap_or(0),
        );
        // Generation order: CSP over poses, link order within each pose.
        let mut starts = vec![0usize; n_poses + 1];
        for c in &motion.cdqs {
            starts[c.pose_idx as usize + 1] += 1;
        }
        for i in 0..n_poses {
            starts[i + 1] += starts[i];
        }
        let mut order = Vec::with_capacity(n);
        for p in csp_order(n_poses, cfg.csp_step) {
            order.extend(starts[p]..starts[p + 1]);
        }

        let mut events = AccelEvents::default();
        let mut gen_pos = 0usize;
        let mut next_gen = cfg.obbgen_latency;
        let mut last_pose_generated = usize::MAX;
        // COPU pipe: (cdq index, predicted, ready cycle).
        let mut pipe: VecDeque<(usize, bool, u64)> = VecDeque::new();
        let mut qcoll: VecDeque<usize> = VecDeque::new();
        let mut qnoncoll: VecDeque<usize> = VecDeque::new();
        // Baseline dispatch FIFO shares the same total buffering.
        let baseline_cap = cfg.qcoll_len + cfg.qnoncoll_len;
        let mut cdus: Vec<Option<(usize, u64)>> = vec![None; cfg.n_cdus];
        let mut completed = 0usize;
        let mut dispatched = 0usize;

        let mut cycle: u64 = 0;
        loop {
            // Set when forward progress was blocked this cycle by a full
            // queue — the observer's `queue_full` stall attribution.
            let mut queue_blocked = false;
            // --- 1. CDU completions.
            for (ci, slot) in cdus.iter_mut().enumerate() {
                if let Some((idx, done)) = *slot {
                    if done <= cycle {
                        *slot = None;
                        completed += 1;
                        let cdq = &motion.cdqs[idx];
                        if cfg.with_copu && !cfg.oracle {
                            let code = self.code(cdq.center);
                            self.cht.observe(code, cdq.colliding);
                            events.cht_writes += 1;
                            if let Some(o) = obs.as_deref_mut() {
                                o.cht_access(true, cycle);
                            }
                        }
                        if cdq.colliding {
                            if let Some(o) = obs.as_deref_mut() {
                                o.collision(ci, cycle);
                                o.finish_motion(cycle);
                            }
                            return MotionSimResult {
                                colliding: true,
                                latency_cycles: cycle,
                                events,
                            };
                        }
                    }
                }
            }
            // --- 2. COPU pipe exits into the queues.
            while let Some(&(idx, predicted, ready)) = pipe.front() {
                if ready > cycle {
                    break;
                }
                let (q, cap, kind) = if predicted {
                    (&mut qcoll, cfg.qcoll_len, QueueKind::Coll)
                } else {
                    (&mut qnoncoll, cfg.qnoncoll_len, QueueKind::Noncoll)
                };
                if q.len() >= cap {
                    queue_blocked = true;
                    break; // backpressure
                }
                q.push_back(idx);
                events.queue_ops += 1;
                if let Some(o) = obs.as_deref_mut() {
                    o.queue_op(kind, cycle, q.len());
                }
                pipe.pop_front();
            }
            // --- 3. OBB generation.
            if gen_pos < n && cycle >= next_gen {
                let idx = order[gen_pos];
                let cdq = &motion.cdqs[idx];
                let emitted = if cfg.with_copu {
                    if pipe.len() < 8 {
                        let predicted = if cfg.oracle {
                            cdq.colliding
                        } else {
                            events.cht_reads += 1;
                            if let Some(o) = obs.as_deref_mut() {
                                o.cht_access(false, cycle);
                            }
                            let code = self.code(cdq.center);
                            self.cht.predict(code)
                        };
                        pipe.push_back((idx, predicted, cycle + cfg.copu_latency));
                        true
                    } else {
                        false
                    }
                } else if qnoncoll.len() < baseline_cap {
                    qnoncoll.push_back(idx);
                    events.queue_ops += 1;
                    if let Some(o) = obs.as_deref_mut() {
                        o.queue_op(QueueKind::Noncoll, cycle, qnoncoll.len());
                    }
                    true
                } else {
                    queue_blocked = true;
                    false
                };
                if emitted {
                    if cdq.pose_idx as usize != last_pose_generated {
                        last_pose_generated = cdq.pose_idx as usize;
                        events.poses_generated += 1;
                        if let Some(o) = obs.as_deref_mut() {
                            o.pose(cycle);
                        }
                    }
                    gen_pos += 1;
                    next_gen = cycle + cfg.obbgen_ii;
                }
            }
            let all_generated = gen_pos >= n && pipe.is_empty();
            // --- 4. Dispatch to free CDUs.
            for (ci, slot) in cdus.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let next = if cfg.with_copu {
                    if let Some(idx) = qcoll.pop_front() {
                        if let Some(o) = obs.as_deref_mut() {
                            o.queue_op(QueueKind::Coll, cycle, qcoll.len());
                        }
                        Some(idx)
                    } else if all_generated || qnoncoll.len() >= cfg.qnoncoll_len {
                        let popped = qnoncoll.pop_front();
                        if popped.is_some() {
                            if let Some(o) = obs.as_deref_mut() {
                                o.queue_op(QueueKind::Noncoll, cycle, qnoncoll.len());
                            }
                        }
                        popped
                    } else {
                        None
                    }
                } else {
                    let popped = qnoncoll.pop_front();
                    if popped.is_some() {
                        if let Some(o) = obs.as_deref_mut() {
                            o.queue_op(QueueKind::Noncoll, cycle, qnoncoll.len());
                        }
                    }
                    popped
                };
                if let Some(idx) = next {
                    events.queue_ops += 1;
                    let cdq = &motion.cdqs[idx];
                    let occupancy =
                        cfg.cdu_base_cycles + cfg.cdu_per_obstacle * cdq.obstacle_tests as u64;
                    *slot = Some((idx, cycle + occupancy.max(1)));
                    if let Some(o) = obs.as_deref_mut() {
                        o.cdu_span(ci, cycle, occupancy.max(1));
                    }
                    dispatched += 1;
                    events.cdqs += 1;
                    events.obstacle_tests += cdq.obstacle_tests as u64;
                }
            }
            // --- 5. Termination: everything executed, nothing in flight.
            if completed == n && dispatched == n {
                if let Some(o) = obs.as_deref_mut() {
                    o.finish_motion(cycle);
                }
                return MotionSimResult {
                    colliding: false,
                    latency_cycles: cycle,
                    events,
                };
            }
            // An empty motion terminates immediately.
            if n == 0 {
                if let Some(o) = obs.as_deref_mut() {
                    o.finish_motion(0);
                }
                return MotionSimResult {
                    colliding: false,
                    latency_cycles: 0,
                    events,
                };
            }
            // The cycle is over: charge it to exactly one stall bucket and
            // sample queue occupancy before the clock advances.
            if let Some(o) = obs.as_deref_mut() {
                let cdu_busy = cdus.iter().any(Option::is_some);
                o.cycle(
                    cdu_busy,
                    queue_blocked,
                    pipe.len(),
                    qcoll.len(),
                    qnoncoll.len(),
                );
            }
            cycle += 1;
            assert!(
                cycle < CYCLE_CAP,
                "accelerator simulation exceeded cycle cap"
            );
        }
    }

    /// Simulates every motion of a query trace back-to-back (the CHT
    /// carries over within the query).
    pub fn run_query(&mut self, motions: &[MotionTrace]) -> AccelRunResult {
        let query_span = copred_obs::span("accel", "run_query");
        let mut agg = AccelRunResult::default();
        for m in motions {
            let r = self.run_motion(m);
            agg.motions += 1;
            agg.colliding_motions += u64::from(r.colliding);
            agg.total_cycles += r.latency_cycles;
            agg.events.merge(&r.events);
        }
        drop(query_span);
        if copred_obs::enabled() {
            // Cycle/energy-model inputs as Chrome counter tracks, one
            // sample per query.
            copred_obs::counter("accel", "cycles", agg.total_cycles);
            copred_obs::counter("accel", "cdqs", agg.events.cdqs);
            copred_obs::counter("accel", "obstacle_tests", agg.events.obstacle_tests);
            copred_obs::counter("accel", "cht_reads", agg.events.cht_reads);
            copred_obs::counter("accel", "cht_writes", agg.events.cht_writes);
            copred_obs::counter("accel", "queue_ops", agg.events.queue_ops);
        }
        agg
    }

    /// Like [`AccelSim::run_query`], but feeds the observer per-motion
    /// stall attribution, occupancy histograms, and (when enabled) the
    /// simulated-time trace. Motions share one virtual clock: each starts
    /// at the cycle where the previous one ended.
    pub fn run_query_observed(
        &mut self,
        motions: &[MotionTrace],
        obs: &mut AccelObserver,
    ) -> AccelRunResult {
        let mut agg = AccelRunResult::default();
        for m in motions {
            let r = self.run_motion_observed(m, obs);
            agg.motions += 1;
            agg.colliding_motions += u64::from(r.colliding);
            agg.total_cycles += r.latency_cycles;
            agg.events.merge(&r.events);
        }
        agg
    }

    /// Total accelerator area for this configuration under `area`.
    pub fn area_mm2(&self, area: &AreaModel, em: &EnergyModel) -> f64 {
        let copu = if self.cfg.with_copu {
            Some((
                &self.cfg.cht_params,
                self.cfg.qcoll_len + self.cfg.qnoncoll_len,
            ))
        } else {
            None
        };
        area.accel_area_mm2(self.cfg.n_cdus, 1, copu, &em.sram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Config, Motion, Robot};
    use copred_planners::{MotionRecord, PlanLog, Stage};
    use copred_trace::QueryTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(n: usize, seed: u64) -> (Robot, Vec<MotionTrace>) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![
                Aabb::new(Vec3::new(0.1, -1.0, -0.1), Vec3::new(0.5, 0.6, 0.1)),
                Aabb::new(Vec3::new(-0.7, -0.3, -0.1), Vec3::new(-0.4, 0.0, 0.1)),
            ],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<MotionRecord> = (0..n)
            .map(|_| {
                let poses = Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(24);
                let colliding = copred_collision::motion_collides(&robot, &env, &poses);
                MotionRecord {
                    poses,
                    stage: Stage::Explore,
                    colliding,
                }
            })
            .collect();
        let trace = QueryTrace::from_log(&robot, &env, &PlanLog { records });
        (robot, trace.motions)
    }

    fn sim(robot: &Robot, cfg: AccelConfig) -> AccelSim {
        AccelSim::new(cfg, CoordHash::paper_default(robot))
    }

    /// The paper's §VI-B2 performance CHT: 4096 × 1-bit, S=0, U=0.
    fn perf_cht() -> ChtParams {
        ChtParams::paper_1bit()
    }

    /// A collision-heavy 7-DOF arm workload (MPNet-Baxter-like: motions of
    /// 20 poses × 7 links = 140 CDQs, most motions colliding) — the regime
    /// the paper's Fig. 16 performance evaluation runs in, where QNONCOLL
    /// overflows and the dispatcher stays busy.
    fn dense_workload(n: usize, seed: u64) -> (Robot, Vec<MotionTrace>) {
        let robot: Robot = presets::kuka_iiwa().into();
        let env = Environment::new(
            robot.workspace(),
            vec![
                Aabb::from_center_half_extents(Vec3::new(0.45, 0.1, 0.45), Vec3::splat(0.22)),
                Aabb::from_center_half_extents(Vec3::new(-0.35, -0.35, 0.55), Vec3::splat(0.18)),
                Aabb::from_center_half_extents(Vec3::new(0.0, 0.5, 0.3), Vec3::splat(0.16)),
            ],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<MotionRecord> = (0..n)
            .map(|_| {
                let poses = Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(20);
                let colliding = copred_collision::motion_collides(&robot, &env, &poses);
                MotionRecord {
                    poses,
                    stage: Stage::Explore,
                    colliding,
                }
            })
            .collect();
        let trace = QueryTrace::from_log(&robot, &env, &PlanLog { records });
        (robot, trace.motions)
    }

    #[test]
    fn outcomes_match_ground_truth() {
        let (robot, motions) = workload(40, 1);
        for cfg in [
            AccelConfig::baseline(4),
            AccelConfig::copu(4, ChtParams::paper_2d()),
        ] {
            let mut s = sim(&robot, cfg);
            for m in &motions {
                let r = s.run_motion(m);
                assert_eq!(r.colliding, m.colliding(), "simulator outcome diverged");
                assert!(r.events.cdqs <= m.cdq_count() as u64);
            }
        }
    }

    #[test]
    fn copu_reduces_cdqs() {
        let (robot, motions) = workload(120, 2);
        let mut base = sim(&robot, AccelConfig::baseline(4));
        let mut copu = sim(&robot, AccelConfig::copu(4, ChtParams::paper_2d()));
        let rb = base.run_query(&motions);
        let rc = copu.run_query(&motions);
        assert_eq!(rb.colliding_motions, rc.colliding_motions);
        assert!(
            rc.cdqs_executed() < rb.cdqs_executed(),
            "copu {} !< baseline {}",
            rc.cdqs_executed(),
            rb.cdqs_executed()
        );
    }

    #[test]
    fn copu_reduces_latency() {
        // The paper's fig. 16 setup: collision-heavy workload, aggressive
        // 1-bit CHT (S=0, U=0), COPU.1 vs baseline.1.
        let (robot, motions) = dense_workload(300, 3);
        let mut base = sim(&robot, AccelConfig::baseline(1));
        let mut copu = sim(&robot, AccelConfig::copu(1, perf_cht()));
        let rb = base.run_query(&motions);
        let rc = copu.run_query(&motions);
        assert!(
            rc.mean_latency() < rb.mean_latency(),
            "copu {} !< baseline {}",
            rc.mean_latency(),
            rb.mean_latency()
        );
    }

    #[test]
    fn more_cdus_lower_latency() {
        let (robot, motions) = workload(60, 4);
        let mut one = sim(&robot, AccelConfig::baseline(1));
        let mut six = sim(&robot, AccelConfig::baseline(6));
        let r1 = one.run_query(&motions);
        let r6 = six.run_query(&motions);
        assert!(r6.mean_latency() < r1.mean_latency());
        // Parallel execution may do extra in-flight work but never less.
        assert!(r6.cdqs_executed() >= r1.cdqs_executed());
    }

    #[test]
    fn free_motion_executes_all_cdqs() {
        let (robot, _) = workload(1, 5);
        let env = Environment::empty(robot.workspace());
        let poses =
            Motion::new(Config::new(vec![-0.5, 0.0]), Config::new(vec![0.5, 0.0])).discretize(10);
        let log = PlanLog {
            records: vec![MotionRecord {
                poses,
                stage: Stage::Explore,
                colliding: false,
            }],
        };
        let trace = QueryTrace::from_log(&robot, &env, &log);
        for cfg in [
            AccelConfig::baseline(3),
            AccelConfig::copu(3, ChtParams::paper_2d()),
        ] {
            let mut s = sim(&robot, cfg);
            let r = s.run_motion(&trace.motions[0]);
            assert!(!r.colliding);
            assert_eq!(r.events.cdqs, 10);
        }
    }

    #[test]
    fn reset_query_clears_history() {
        let (robot, motions) = workload(30, 6);
        let mut s = sim(&robot, AccelConfig::copu(2, ChtParams::paper_2d()));
        let first = s.run_query(&motions);
        s.reset_query();
        let second = s.run_query(&motions);
        assert_eq!(first.cdqs_executed(), second.cdqs_executed());
        assert_eq!(first.total_cycles, second.total_cycles);
    }

    #[test]
    fn empty_motion_is_trivial() {
        let (robot, _) = workload(1, 7);
        let empty = MotionTrace {
            stage: Stage::Explore,
            poses: vec![],
            cdqs: vec![],
        };
        let mut s = sim(&robot, AccelConfig::baseline(2));
        let r = s.run_motion(&empty);
        assert!(!r.colliding);
        assert_eq!(r.latency_cycles, 0);
    }

    #[test]
    fn energy_accounting_is_monotone_in_events() {
        let (robot, motions) = dense_workload(300, 8);
        let em = EnergyModel::default();
        let am = AreaModel::default();
        let mut base = sim(&robot, AccelConfig::baseline(4));
        let mut copu = sim(&robot, AccelConfig::copu(4, perf_cht()));
        let rb = base.run_query(&motions);
        let rc = copu.run_query(&motions);
        let area_b = base.area_mm2(&am, &em);
        let area_c = copu.area_mm2(&am, &em);
        assert!(area_c > area_b, "COPU adds area");
        let eb = rb.energy_with_cht_pj(&em, area_b, &perf_cht());
        let ec = rc.energy_with_cht_pj(&em, area_c, &perf_cht());
        assert!(eb > 0.0 && ec > 0.0);
        // Fewer CDQs should net out to lower energy despite CHT accesses.
        assert!(ec < eb, "copu energy {ec} !< baseline {eb}");
    }

    #[test]
    fn stall_attribution_sums_to_latency_per_motion() {
        let (robot, motions) = dense_workload(40, 11);
        for cfg in [
            AccelConfig::baseline(2),
            AccelConfig::copu(2, perf_cht()),
            AccelConfig::oracle(2),
        ] {
            let mut s = sim(&robot, cfg);
            let mut obs = AccelObserver::new();
            for m in &motions {
                let r = s.run_motion_observed(m, &mut obs);
                let stalls = obs.motion_stalls.last().expect("one breakdown per motion");
                assert_eq!(
                    stalls.total(),
                    r.latency_cycles,
                    "stall buckets must cover every simulated cycle"
                );
            }
            assert_eq!(obs.motion_stalls.len(), motions.len());
            let total: u64 = obs
                .motion_stalls
                .iter()
                .map(crate::StallBreakdown::total)
                .sum();
            assert_eq!(obs.stalls.total(), total, "aggregate matches per-motion");
            // Occupancy histograms sample once per classified cycle.
            assert_eq!(obs.qcoll_occupancy.samples(), total);
            assert_eq!(obs.qnoncoll_occupancy.samples(), total);
            assert_eq!(obs.pipe_occupancy.samples(), total);
        }
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let (robot, motions) = workload(60, 12);
        let cfg = AccelConfig::copu(3, ChtParams::paper_2d());
        let mut plain = sim(&robot, cfg.clone());
        let mut probed = sim(&robot, cfg);
        let mut obs = AccelObserver::with_trace(3);
        let a = plain.run_query(&motions);
        let b = probed.run_query_observed(&motions, &mut obs);
        assert_eq!(a, b, "observation must not perturb the simulation");
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let (robot, motions) = dense_workload(120, 13);
        let em = EnergyModel::default();
        let am = AreaModel::default();
        for cfg in [AccelConfig::baseline(4), AccelConfig::copu(4, perf_cht())] {
            let mut s = sim(&robot, cfg);
            let area = s.area_mm2(&am, &em);
            let r = s.run_query(&motions);
            let bd = r.energy_breakdown(&em, area, &perf_cht());
            let total = r.energy_with_cht_pj(&em, area, &perf_cht());
            assert!(
                (bd.total_pj() - total).abs() <= 1e-9,
                "breakdown {} != total {}",
                bd.total_pj(),
                total
            );
            assert!(bd.cdus_pj > 0.0 && bd.leakage_pj > 0.0);
        }
    }

    #[test]
    fn simulated_trace_is_deterministic_monotone_and_complete() {
        let (robot, motions) = workload(30, 14);
        let cfg = AccelConfig::copu(2, ChtParams::paper_2d());
        let run = |motions: &[MotionTrace]| {
            let mut s = sim(&robot, cfg.clone());
            let mut obs = AccelObserver::with_trace(2);
            let r = s.run_query_observed(motions, &mut obs);
            (r, obs)
        };
        let (r1, o1) = run(&motions);
        let (r2, o2) = run(&motions);
        let t1 = o1.trace().expect("trace enabled");
        let t2 = o2.trace().expect("trace enabled");
        assert_eq!(t1, t2, "same seed, same trace");
        assert_eq!(r1, r2);
        assert!(t1.is_monotone_per_track(), "virtual clock went backwards");
        assert_eq!(t1.to_chrome_json(), t2.to_chrome_json());

        // Event counts tie out against the AccelEvents ledger: one CDU
        // span per CDQ, one pose instant per generated pose, one depth
        // counter per queue op, one CHT instant per read or write.
        use copred_obs::VEventKind;
        let spans = t1
            .events()
            .iter()
            .filter(|e| e.kind == VEventKind::Span)
            .count();
        assert_eq!(spans as u64, r1.events.cdqs, "one span per CDQ");
        let poses = t1
            .events()
            .iter()
            .filter(|e| e.kind == VEventKind::Instant && e.name == "pose")
            .count();
        assert_eq!(poses as u64, r1.events.poses_generated);
        let depth_samples = t1
            .events()
            .iter()
            .filter(|e| e.kind == VEventKind::Counter && e.name == "depth")
            .count();
        assert_eq!(depth_samples as u64, r1.events.queue_ops);
        let cht_accesses = t1
            .events()
            .iter()
            .filter(|e| e.kind == VEventKind::Instant && (e.name == "read" || e.name == "write"))
            .count();
        assert_eq!(
            cht_accesses as u64,
            r1.events.cht_reads + r1.events.cht_writes
        );
    }

    #[test]
    fn prom_page_carries_stalls_and_energy() {
        let (robot, motions) = workload(40, 15);
        let em = EnergyModel::default();
        let am = AreaModel::default();
        let mut s = sim(&robot, AccelConfig::copu(2, ChtParams::paper_2d()));
        let area = s.area_mm2(&am, &em);
        let mut obs = AccelObserver::new();
        let r = s.run_query_observed(&motions, &mut obs);
        let bd = r.energy_breakdown(&em, area, &ChtParams::paper_2d());
        let page = crate::accel_prom_page(&r, &obs.stalls, &bd);
        let samples = copred_obs::parse_prometheus(&page).expect("page parses");
        for s in &samples {
            assert!(s.name.starts_with("copred_accel_"), "bad name {}", s.name);
        }
        let stall_sum: f64 = samples
            .iter()
            .filter(|s| s.name == "copred_accel_stall_cycles_total")
            .map(|s| s.value)
            .sum();
        let cycles = samples
            .iter()
            .find(|s| s.name == "copred_accel_cycles_total")
            .expect("cycles gauge")
            .value;
        assert_eq!(stall_sum, cycles, "stall attribution covers all cycles");
        let energy_sum: f64 = samples
            .iter()
            .filter(|s| s.name == "copred_accel_energy_pj")
            .map(|s| s.value)
            .sum();
        let energy_total = samples
            .iter()
            .find(|s| s.name == "copred_accel_energy_total_pj")
            .expect("total gauge")
            .value;
        assert!((energy_sum - energy_total).abs() <= 1e-9 * energy_total.max(1.0));
    }

    #[test]
    fn queue_too_small_hurts_cdq_reduction() {
        let (robot, motions) = workload(120, 9);
        let mut tiny = sim(
            &robot,
            AccelConfig {
                qnoncoll_len: 2,
                ..AccelConfig::copu(4, ChtParams::paper_2d())
            },
        );
        let mut big = sim(
            &robot,
            AccelConfig {
                qnoncoll_len: 56,
                ..AccelConfig::copu(4, ChtParams::paper_2d())
            },
        );
        let rt = tiny.run_query(&motions);
        let rb = big.run_query(&motions);
        assert!(
            rt.cdqs_executed() >= rb.cdqs_executed(),
            "tiny queue {} executed fewer CDQs than big {}",
            rt.cdqs_executed(),
            rb.cdqs_executed()
        );
    }
}
