//! Sphere-based CDU variant (paper §VII-1).
//!
//! With curobo-style sphere sets, each robot link is covered by several
//! spheres and a CDQ is one sphere-environment test. The COPU predicts at
//! *link* granularity (the link's transformation matrix — hence its center —
//! is what flows through the queues); on dispatch, the link is expanded into
//! its spheres and those CDQs run with early exit. The paper measures a
//! 23.4% sphere-CDQ reduction for Jaco2 + MPNet.

use copred_collision::Environment;
use copred_core::hash::CollisionHash;
use copred_core::{Cht, ChtParams, CoordHash, HashInput};
use copred_kinematics::{csp_order, Config, Robot};

/// Counting-level result of a sphere-CDU run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SphereRunResult {
    /// Motions checked.
    pub motions: u64,
    /// Motions found colliding.
    pub colliding_motions: u64,
    /// Sphere-environment CDQs executed.
    pub sphere_cdqs: u64,
}

/// The sphere-CDU pipeline simulator (CDQ-counting granularity).
#[derive(Debug)]
pub struct SphereSim {
    hash: CoordHash,
    cht: Cht,
    csp_step: usize,
    with_copu: bool,
}

impl SphereSim {
    /// Creates a simulator for `robot`; `with_copu` false gives the CSP
    /// baseline.
    pub fn new(robot: &Robot, cht_params: ChtParams, with_copu: bool, seed: u64) -> Self {
        SphereSim {
            hash: CoordHash::paper_default(robot),
            cht: Cht::new(cht_params, seed),
            csp_step: 5,
            with_copu,
        }
    }

    /// Clears prediction history between planning queries.
    pub fn reset_query(&mut self) {
        self.cht.reset();
    }

    /// Checks one motion (discretized poses) and counts sphere CDQs.
    pub fn run_motion(
        &mut self,
        robot: &Robot,
        env: &Environment,
        poses: &[Config],
    ) -> (bool, u64) {
        let order = csp_order(poses.len(), self.csp_step);
        let mut executed = 0u64;
        // Deferred links: (pose order position, link).
        let mut queue: Vec<(usize, usize)> = Vec::new();
        // Cache FK per pose to expand links on dispatch.
        let fk: Vec<_> = poses.iter().map(|q| robot.fk(q)).collect();
        let dummy = Config::zeros(0);
        let with_copu = self.with_copu;
        let hash = &self.hash;
        let cht = &mut self.cht;

        // Executes a link's sphere CDQs with early exit and records the
        // link-level outcome in the history table.
        let exec_link = |pi: usize, li: usize, executed: &mut u64, cht: &mut Cht| -> bool {
            let link = &fk[pi].links[li];
            let mut hit = false;
            for s in &link.spheres {
                *executed += 1;
                if env.sphere_collides(s) {
                    hit = true;
                    break;
                }
            }
            if with_copu {
                let code = hash.code(&HashInput {
                    config: &dummy,
                    center: link.center,
                });
                cht.observe(code, hit);
            }
            hit
        };

        for &pi in &order {
            for li in 0..fk[pi].links.len() {
                if with_copu {
                    let center = fk[pi].links[li].center;
                    let code = hash.code(&HashInput {
                        config: &dummy,
                        center,
                    });
                    if cht.predict(code) {
                        if exec_link(pi, li, &mut executed, cht) {
                            return (true, executed);
                        }
                    } else {
                        queue.push((pi, li));
                    }
                } else if exec_link(pi, li, &mut executed, cht) {
                    return (true, executed);
                }
            }
        }
        for (pi, li) in queue {
            if exec_link(pi, li, &mut executed, cht) {
                return (true, executed);
            }
        }
        (false, executed)
    }

    /// Runs a whole workload of discretized motions.
    pub fn run_query(
        &mut self,
        robot: &Robot,
        env: &Environment,
        motions: &[Vec<Config>],
    ) -> SphereRunResult {
        let mut r = SphereRunResult::default();
        for m in motions {
            let (hit, cdqs) = self.run_motion(robot, env, m);
            r.motions += 1;
            r.colliding_motions += u64::from(hit);
            r.sphere_cdqs += cdqs;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (Robot, Environment, Vec<Vec<Config>>) {
        let robot: Robot = presets::jaco2().into();
        let env = Environment::new(
            robot.workspace(),
            vec![
                Aabb::from_center_half_extents(Vec3::new(0.4, 0.1, 0.3), Vec3::splat(0.18)),
                Aabb::from_center_half_extents(Vec3::new(-0.3, -0.3, 0.5), Vec3::splat(0.14)),
            ],
        );
        let mut rng = StdRng::seed_from_u64(12);
        let motions: Vec<Vec<Config>> = (0..60)
            .map(|_| {
                Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(12)
            })
            .collect();
        (robot, env, motions)
    }

    #[test]
    fn outcomes_agree_between_modes() {
        let (robot, env, motions) = workload();
        let mut base = SphereSim::new(&robot, ChtParams::paper_arm(), false, 3);
        let mut copu = SphereSim::new(&robot, ChtParams::paper_arm(), true, 3);
        let rb = base.run_query(&robot, &env, &motions);
        let rc = copu.run_query(&robot, &env, &motions);
        assert_eq!(rb.colliding_motions, rc.colliding_motions);
        assert_eq!(rb.motions, 60);
    }

    #[test]
    fn copu_reduces_sphere_cdqs() {
        let (robot, env, motions) = workload();
        let mut base = SphereSim::new(&robot, ChtParams::paper_arm(), false, 3);
        let mut copu = SphereSim::new(&robot, ChtParams::paper_arm(), true, 3);
        let rb = base.run_query(&robot, &env, &motions);
        let rc = copu.run_query(&robot, &env, &motions);
        assert!(
            rc.sphere_cdqs < rb.sphere_cdqs,
            "copu {} !< baseline {}",
            rc.sphere_cdqs,
            rb.sphere_cdqs
        );
    }

    #[test]
    fn free_motion_costs_all_spheres() {
        let robot: Robot = presets::jaco2().into();
        let env = Environment::empty(robot.workspace());
        let poses = Motion::new(Config::zeros(7), Config::new(vec![0.3; 7])).discretize(5);
        let total_spheres: u64 = poses
            .iter()
            .map(|q| robot.fk(q).sphere_count() as u64)
            .sum();
        let mut s = SphereSim::new(&robot, ChtParams::paper_arm(), true, 1);
        let (hit, cdqs) = s.run_motion(&robot, &env, &poses);
        assert!(!hit);
        assert_eq!(cdqs, total_spheres);
    }

    #[test]
    fn reset_restores_cold_behaviour() {
        let (robot, env, motions) = workload();
        let mut s = SphereSim::new(&robot, ChtParams::paper_arm(), true, 5);
        let a = s.run_query(&robot, &env, &motions);
        s.reset_query();
        let b = s.run_query(&robot, &env, &motions);
        assert_eq!(a.sphere_cdqs, b.sphere_cdqs);
    }
}
