//! Area and energy models (paper §VI-B1).
//!
//! The paper sizes the CHT and queues with the OpenRAM memory compiler on
//! FreePDK 45nm. Neither tool is usable from a pure-Rust reproduction, so
//! this module provides an analytic model whose constants are *calibrated to
//! the component overhead ratios the paper publishes* (DESIGN.md
//! substitution table):
//!
//! * CHT 4096×8 bit → 1.96% area / 1.01% energy of a 24-CDU MPAccel;
//! * CHT 4096×1 bit → 0.55% area / 0.28% energy;
//! * QCOLL+QNONCOLL → 2.6% area / 1.4% energy.
//!
//! All figures that matter downstream (perf/watt, perf/mm², Fig. 16) are
//! ratios, which the calibration preserves.

use copred_core::ChtParams;

/// Analytic SRAM model: linear in total bit count with a fixed periphery
/// term (decoder/sense amps), the first-order behaviour of compiled SRAMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Fixed periphery area (mm²).
    pub area_base_mm2: f64,
    /// Area per bit (mm²/bit).
    pub area_per_bit_mm2: f64,
    /// Fixed access energy (pJ).
    pub energy_base_pj: f64,
    /// Access energy per word bit (pJ/bit).
    pub energy_per_word_bit_pj: f64,
    /// Access energy growth per address bit (pJ/bit) — longer word lines.
    pub energy_per_addr_bit_pj: f64,
}

impl SramModel {
    /// Constants calibrated to the paper's 45nm overhead ratios.
    pub fn calibrated_45nm() -> Self {
        SramModel {
            area_base_mm2: 0.0335,
            area_per_bit_mm2: 4.72e-6,
            energy_base_pj: 0.004,
            energy_per_word_bit_pj: 0.0125,
            energy_per_addr_bit_pj: 0.0014,
        }
    }

    /// Macro area for `entries × word_bits`.
    pub fn area_mm2(&self, entries: usize, word_bits: u32) -> f64 {
        self.area_base_mm2 + self.area_per_bit_mm2 * entries as f64 * f64::from(word_bits)
    }

    /// Per-access (read or write) energy.
    pub fn access_energy_pj(&self, entries: usize, word_bits: u32) -> f64 {
        let addr_bits = (entries as f64).log2();
        self.energy_base_pj
            + self.energy_per_word_bit_pj * f64::from(word_bits)
            + self.energy_per_addr_bit_pj * addr_bits
    }
}

/// Per-event energies and per-component areas of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fixed energy per CDQ issued to a CDU (pJ).
    pub cdq_base_pj: f64,
    /// Energy per obstacle-pair SAT test inside a CDQ (pJ).
    pub obstacle_test_pj: f64,
    /// Energy per pose processed by the OBB Generation Unit (pJ) —
    /// the DH matrix chain and OBB fitting.
    pub obbgen_pose_pj: f64,
    /// Energy per queue push or pop (pJ).
    pub queue_op_pj: f64,
    /// Leakage energy per cycle per mm² (pJ/cycle/mm²).
    pub leakage_pj_per_cycle_mm2: f64,
    /// The SRAM model for the CHT.
    pub sram: SramModel,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            cdq_base_pj: 10.0,
            obstacle_test_pj: 1.5,
            obbgen_pose_pj: 25.0,
            queue_op_pj: 0.17,
            leakage_pj_per_cycle_mm2: 0.002,
            sram: SramModel::calibrated_45nm(),
        }
    }
}

/// Component areas (mm²) of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One OBB-environment CDU.
    pub cdu_mm2: f64,
    /// One OBB Generation Unit.
    pub obbgen_mm2: f64,
    /// COPU control logic (hash, predictor, update unit) excluding the CHT.
    pub copu_logic_mm2: f64,
    /// Queue storage per entry (an OBB descriptor).
    pub queue_entry_mm2: f64,
    /// Fixed infrastructure (scheduler, result collector, interconnect).
    pub base_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            cdu_mm2: 0.30,
            obbgen_mm2: 0.35,
            copu_logic_mm2: 0.02,
            queue_entry_mm2: 0.000975,
            base_mm2: 1.0,
        }
    }
}

impl AreaModel {
    /// Area of an accelerator with `n_cdus` CDUs, `n_obbgen` OBB units, and
    /// optionally a COPU with queues (`qcoll + qnoncoll` entries) and a CHT.
    pub fn accel_area_mm2(
        &self,
        n_cdus: usize,
        n_obbgen: usize,
        copu: Option<(&ChtParams, usize)>,
        sram: &SramModel,
    ) -> f64 {
        let mut a =
            self.base_mm2 + n_cdus as f64 * self.cdu_mm2 + n_obbgen as f64 * self.obbgen_mm2;
        if let Some((cht, queue_entries)) = copu {
            a += self.copu_logic_mm2;
            a += sram.area_mm2(cht.entries(), cht.entry_bits());
            a += queue_entries as f64 * self.queue_entry_mm2;
        }
        a
    }
}

/// Per-component split of a run's energy. Produced by
/// `AccelRunResult::energy_breakdown`; the components sum to
/// `energy_with_cht_pj` exactly (an invariant the test suite pins to
/// 1e-9), so the breakdown is the total, itemized.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// CDU work: CDQ issue plus obstacle-pair tests (pJ).
    pub cdus_pj: f64,
    /// OBB Generation Unit work (pJ).
    pub obbgen_pj: f64,
    /// QCOLL/QNONCOLL pushes and pops (pJ).
    pub queues_pj: f64,
    /// CHT SRAM reads and writes (pJ).
    pub cht_pj: f64,
    /// Leakage over the run's simulated cycles and area (pJ).
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy — the sum of every component. The addition order
    /// mirrors `AccelRunResult::energy_with_cht_pj` term for term, so the
    /// two agree bit-for-bit, not just within rounding.
    pub fn total_pj(&self) -> f64 {
        self.cdus_pj + self.obbgen_pj + self.queues_pj + self.leakage_pj + self.cht_pj
    }

    /// `(component, pJ)` rows in a fixed order, for tables and metrics.
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("cdus", self.cdus_pj),
            ("obbgen", self.obbgen_pj),
            ("queues", self.queues_pj),
            ("cht", self.cht_pj),
            ("leakage", self.leakage_pj),
        ]
    }
}

/// The §VI-B1 overhead table, computed from the calibrated models for the
/// MPAccel configuration: 24 CDUs with one COPU + queues + OBB Generation
/// Unit per 6 CDUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Area overhead of a 4096×8 CHT (fraction of base accelerator area).
    pub cht8_area: f64,
    /// Energy overhead of a 4096×8 CHT (fraction of base CDQ energy).
    pub cht8_energy: f64,
    /// Area overhead of a 4096×1 CHT.
    pub cht1_area: f64,
    /// Energy overhead of a 4096×1 CHT.
    pub cht1_energy: f64,
    /// Area overhead of the QCOLL/QNONCOLL queues.
    pub queues_area: f64,
    /// Energy overhead of the queues.
    pub queues_energy: f64,
}

/// Computes the overhead table for the paper's MPAccel configuration.
///
/// Energy overheads assume the steady-state access mix of the simulator:
/// one CHT read per CDQ, one CHT write per executed CDQ, one queue push and
/// pop per CDQ, against the average CDQ energy for `avg_obstacles`
/// obstacle tests plus the amortized OBB-generation energy.
pub fn mpaccel_overheads(
    energy: &EnergyModel,
    area: &AreaModel,
    avg_obstacles: f64,
) -> OverheadReport {
    // MPAccel: 24 CDUs, one OBBGen per 6 CDUs.
    let base_area = area.accel_area_mm2(24, 4, None, &energy.sram);
    let cht8 = ChtParams::paper_arm();
    let cht1 = ChtParams::paper_1bit();
    let cht8_area = energy.sram.area_mm2(cht8.entries(), cht8.entry_bits()) / base_area;
    let cht1_area = energy.sram.area_mm2(cht1.entries(), cht1.entry_bits()) / base_area;
    // Four COPU groups, each with QCOLL(8) + QNONCOLL(56).
    let queue_entries = 4 * (8 + 56);
    let queues_area = queue_entries as f64 * area.queue_entry_mm2 / base_area;

    // Per-CDQ base energy: CDU work + amortized OBB generation (one pose
    // per `links` CDQs; links ≈ 7 for the arms).
    let per_cdq =
        energy.cdq_base_pj + avg_obstacles * energy.obstacle_test_pj + energy.obbgen_pose_pj / 7.0;
    let cht8_access = energy
        .sram
        .access_energy_pj(cht8.entries(), cht8.entry_bits());
    let cht1_access = energy
        .sram
        .access_energy_pj(cht1.entries(), cht1.entry_bits());
    let cht8_energy = 2.0 * cht8_access / per_cdq;
    let cht1_energy = 2.0 * cht1_access / per_cdq;
    let queues_energy = 2.0 * energy.queue_op_pj / per_cdq;
    OverheadReport {
        cht8_area,
        cht8_energy,
        cht1_area,
        cht1_energy,
        queues_area,
        queues_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= b * rel
    }

    #[test]
    fn sram_area_scales_with_bits() {
        let s = SramModel::calibrated_45nm();
        let a8 = s.area_mm2(4096, 8);
        let a1 = s.area_mm2(4096, 1);
        assert!(a8 > a1);
        // Doubling entries roughly doubles the bit-dependent part.
        let a16k = s.area_mm2(8192, 8);
        assert!(a16k < 2.0 * a8);
        assert!(a16k > a8);
    }

    #[test]
    fn sram_access_energy_grows_with_word_and_depth() {
        let s = SramModel::calibrated_45nm();
        assert!(s.access_energy_pj(4096, 8) > s.access_energy_pj(4096, 1));
        assert!(s.access_energy_pj(8192, 8) > s.access_energy_pj(4096, 8));
    }

    #[test]
    fn overheads_match_paper_within_tolerance() {
        // Calibration check: the reported §VI-B1 numbers.
        let r = mpaccel_overheads(&EnergyModel::default(), &AreaModel::default(), 7.0);
        assert!(
            close(r.cht8_area, 0.0196, 0.15),
            "cht8 area {}",
            r.cht8_area
        );
        assert!(
            close(r.cht8_energy, 0.0101, 0.25),
            "cht8 energy {}",
            r.cht8_energy
        );
        assert!(
            close(r.cht1_area, 0.0055, 0.25),
            "cht1 area {}",
            r.cht1_area
        );
        assert!(
            close(r.cht1_energy, 0.0028, 0.35),
            "cht1 energy {}",
            r.cht1_energy
        );
        assert!(
            close(r.queues_area, 0.026, 0.15),
            "queues area {}",
            r.queues_area
        );
        assert!(
            close(r.queues_energy, 0.014, 0.35),
            "queues energy {}",
            r.queues_energy
        );
    }

    #[test]
    fn accel_area_composition() {
        let area = AreaModel::default();
        let sram = SramModel::calibrated_45nm();
        let without = area.accel_area_mm2(6, 1, None, &sram);
        let with = area.accel_area_mm2(6, 1, Some((&ChtParams::paper_arm(), 64)), &sram);
        assert!(with > without);
        // The COPU addition is a small fraction.
        assert!((with - without) / without < 0.10);
    }

    #[test]
    fn one_bit_cht_is_cheaper() {
        let sram = SramModel::calibrated_45nm();
        let p8 = ChtParams::paper_arm();
        let p1 = ChtParams::paper_1bit();
        assert!(
            sram.area_mm2(p1.entries(), p1.entry_bits())
                < sram.area_mm2(p8.entries(), p8.entry_bits())
        );
        assert!(
            sram.access_energy_pj(p1.entries(), p1.entry_bits())
                < sram.access_energy_pj(p8.entries(), p8.entry_bits())
        );
    }
}
