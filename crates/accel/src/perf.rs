//! Performance metrics: throughput, perf/watt, perf/mm² (paper Fig. 16).

use crate::energy::{AreaModel, EnergyModel};
use crate::system::{AccelRunResult, AccelSim};

/// Derived performance figures for one accelerator configuration on one
/// workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Mean end-to-end motion-check latency (cycles).
    pub mean_latency_cycles: f64,
    /// Throughput in motion checks per million cycles.
    pub throughput: f64,
    /// Total energy (pJ).
    pub energy_pj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
    /// Throughput per unit energy rate — proportional to perf/watt.
    pub perf_per_watt: f64,
    /// Throughput per area — perf/mm².
    pub perf_per_mm2: f64,
}

/// Computes the Fig. 16 metrics for a finished run.
///
/// perf/watt is throughput divided by average power; with power =
/// energy/time, this reduces to `motions / energy` (times a constant), so
/// only energy and motion counts matter — exactly the quantities the
/// simulator measures.
pub fn perf_report(
    sim: &AccelSim,
    result: &AccelRunResult,
    em: &EnergyModel,
    am: &AreaModel,
) -> PerfReport {
    let area = sim.area_mm2(am, em);
    let energy = result.energy_with_cht_pj(em, area, &sim.config().cht_params);
    let cycles = result.total_cycles.max(1) as f64;
    let throughput = result.motions as f64 / cycles * 1.0e6;
    PerfReport {
        mean_latency_cycles: result.mean_latency(),
        throughput,
        energy_pj: energy,
        area_mm2: area,
        perf_per_watt: result.motions as f64 / energy.max(f64::MIN_POSITIVE),
        perf_per_mm2: throughput / area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{AccelConfig, AccelEvents};
    use copred_core::{ChtParams, CoordHash};
    use copred_kinematics::{presets, Robot};

    #[test]
    fn report_scales_sanely() {
        let robot: Robot = presets::planar_2d().into();
        let sim = AccelSim::new(
            AccelConfig::copu(4, ChtParams::paper_2d()),
            CoordHash::paper_default(&robot),
        );
        let result = AccelRunResult {
            motions: 100,
            colliding_motions: 60,
            total_cycles: 50_000,
            events: AccelEvents {
                cdqs: 2000,
                obstacle_tests: 12_000,
                cht_reads: 2500,
                cht_writes: 2000,
                queue_ops: 5000,
                poses_generated: 2500,
            },
        };
        let r = perf_report(
            &sim,
            &result,
            &EnergyModel::default(),
            &AreaModel::default(),
        );
        assert!(r.throughput > 0.0);
        assert!(r.energy_pj > 0.0);
        assert!(r.perf_per_watt > 0.0);
        assert!(r.perf_per_mm2 > 0.0);
        assert!((r.mean_latency_cycles - 500.0).abs() < 1e-9);
        // Doubling energy events halves perf/watt (modulo leakage):
        let mut doubled = result;
        doubled.events.cdqs *= 2;
        doubled.events.obstacle_tests *= 2;
        doubled.events.poses_generated *= 2;
        let r2 = perf_report(
            &sim,
            &doubled,
            &EnergyModel::default(),
            &AreaModel::default(),
        );
        assert!(r2.perf_per_watt < r.perf_per_watt);
    }

    #[test]
    fn empty_run_is_finite() {
        let robot: Robot = presets::planar_2d().into();
        let sim = AccelSim::new(AccelConfig::baseline(1), CoordHash::paper_default(&robot));
        let r = perf_report(
            &sim,
            &AccelRunResult::default(),
            &EnergyModel::default(),
            &AreaModel::default(),
        );
        assert!(r.throughput.is_finite());
        assert!(r.perf_per_watt.is_finite());
    }
}
