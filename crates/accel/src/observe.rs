//! Deep observability for [`crate::AccelSim`]: per-cycle stall
//! attribution, queue-occupancy histograms, a simulated-time Chrome trace
//! on a virtual cycle clock, and a `copred_accel_*` Prometheus page.
//!
//! Attach an [`AccelObserver`] via [`crate::AccelSim::run_motion_observed`]
//! or [`crate::AccelSim::run_query_observed`]. Every simulated cycle is
//! classified into exactly one [`StallBreakdown`] bucket, so per motion the
//! buckets sum to `latency_cycles` — an invariant the test suite pins.

use crate::energy::EnergyBreakdown;
use crate::system::{AccelEvents, AccelRunResult};
use copred_obs::{PromBuf, TrackId, VirtualTrace};

/// Per-cycle attribution of simulator time. Exactly one bucket is charged
/// each cycle, so the fields sum to the motion's `latency_cycles`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// At least one CDU was executing a CDQ.
    pub busy: u64,
    /// All CDUs idle and a COPU-pipe exit was blocked by a full QCOLL or
    /// QNONCOLL (or, in the baseline, OBB generation blocked on the full
    /// dispatch FIFO).
    pub queue_full: u64,
    /// All CDUs idle; work was in flight in the COPU pipe (hash + CHT
    /// lookup latency, or OBB-generation initiation-interval fill).
    pub pipe_fill: u64,
    /// All CDUs idle; QNONCOLL held entries but the energy-biased
    /// dispatcher kept them back waiting for predicted collisions.
    pub policy_hold: u64,
    /// All CDUs idle and no work anywhere — OBB-generation pipeline-fill
    /// latency at motion start.
    pub starved: u64,
}

impl StallBreakdown {
    /// Sum of all buckets — equals the motion's `latency_cycles`.
    pub fn total(&self) -> u64 {
        self.busy + self.queue_full + self.pipe_fill + self.policy_hold + self.starved
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, o: &StallBreakdown) {
        self.busy += o.busy;
        self.queue_full += o.queue_full;
        self.pipe_fill += o.pipe_fill;
        self.policy_hold += o.policy_hold;
        self.starved += o.starved;
    }

    /// `(reason, cycles)` rows in a fixed order, for tables and metrics.
    pub fn rows(&self) -> [(&'static str, u64); 5] {
        [
            ("busy", self.busy),
            ("queue_full", self.queue_full),
            ("pipe_fill", self.pipe_fill),
            ("policy_hold", self.policy_hold),
            ("starved", self.starved),
        ]
    }
}

/// Converts a cycle-accurate stall breakdown into a `copred-profile`
/// [`copred_obs::Profile`] on simulated time: every bucket becomes an
/// `accel;…` stage path weighted by its cycle count, so the accelerator's
/// utilization renders through the same folded-stack / fraction exports
/// as the wall-clock sampler — deterministically, with no sampling.
///
/// The bucket→stage mapping follows what each stall *means*:
/// `busy` → `accel;execute` (CDUs running CDQs), `queue_full` →
/// `accel;queue_wait` (blocked on QCOLL/QNONCOLL or the dispatch FIFO),
/// `policy_hold` → `accel;schedule` (the energy-biased dispatcher holding
/// entries back), `pipe_fill` → `accel;predict` (hash + CHT prediction
/// latency in the COPU pipe), and `starved` → `accel;decode` (waiting on
/// OBB generation to feed the front of the pipe).
pub fn stall_profile(stalls: &StallBreakdown) -> copred_obs::Profile {
    use copred_obs::Stage;
    let mut p = copred_obs::Profile::default();
    const TID: u32 = 0; // one simulated accelerator "thread"
    for (stage, cycles) in [
        (Stage::Execute, stalls.busy),
        (Stage::QueueWait, stalls.queue_full),
        (Stage::Schedule, stalls.policy_hold),
        (Stage::Predict, stalls.pipe_fill),
        (Stage::Decode, stalls.starved),
    ] {
        if cycles > 0 {
            p.add_path(TID, &[Stage::Accel, stage], cycles);
        }
    }
    p
}

/// Which hardware queue an occupancy sample or queue operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueueKind {
    Coll,
    Noncoll,
}

/// Occupancy histogram: `counts[d]` is the number of cycles the structure
/// held exactly `d` entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHist {
    /// Cycle counts indexed by occupancy.
    pub counts: Vec<u64>,
}

impl OccupancyHist {
    fn bump(&mut self, depth: usize) {
        if self.counts.len() <= depth {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += 1;
    }

    /// Total sampled cycles.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean occupancy over all sampled cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / n as f64
    }

    /// Highest occupancy ever observed.
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or_default()
    }
}

/// Collects stall attribution, occupancy histograms, and (optionally) a
/// simulated-time Chrome trace across one or more observed runs.
#[derive(Debug, Default)]
pub struct AccelObserver {
    /// Aggregate stall breakdown over all observed motions.
    pub stalls: StallBreakdown,
    /// Per-motion breakdowns, in simulation order.
    pub motion_stalls: Vec<StallBreakdown>,
    /// QCOLL occupancy histogram (sampled once per cycle).
    pub qcoll_occupancy: OccupancyHist,
    /// QNONCOLL (or baseline dispatch FIFO) occupancy histogram.
    pub qnoncoll_occupancy: OccupancyHist,
    /// COPU pipe occupancy histogram.
    pub pipe_occupancy: OccupancyHist,
    trace: Option<TraceState>,
    /// Virtual-clock offset of the motion currently being simulated:
    /// motions run back-to-back, so each starts where the previous ended.
    base_cycle: u64,
    /// Breakdown being accumulated for the current motion.
    current: StallBreakdown,
}

#[derive(Debug)]
struct TraceState {
    trace: VirtualTrace,
    cdus: Vec<TrackId>,
    obbgen: TrackId,
    cht: TrackId,
    qcoll: TrackId,
    qnoncoll: TrackId,
}

impl AccelObserver {
    /// An observer collecting stalls and occupancy only (no trace).
    pub fn new() -> Self {
        AccelObserver::default()
    }

    /// An observer that additionally builds a simulated-time Chrome trace
    /// with one track per CDU plus the OBB-generation unit, the CHT, and
    /// both queues.
    pub fn with_trace(n_cdus: usize) -> Self {
        let mut trace = VirtualTrace::new("AccelSim (virtual cycles)");
        let cdus = (0..n_cdus)
            .map(|i| trace.track(&format!("cdu{i}")))
            .collect();
        let obbgen = trace.track("obbgen");
        let cht = trace.track("cht");
        let qcoll = trace.track("qcoll");
        let qnoncoll = trace.track("qnoncoll");
        AccelObserver {
            trace: Some(TraceState {
                trace,
                cdus,
                obbgen,
                cht,
                qcoll,
                qnoncoll,
            }),
            ..AccelObserver::default()
        }
    }

    /// The simulated-time trace, when enabled.
    pub fn trace(&self) -> Option<&VirtualTrace> {
        self.trace.as_ref().map(|t| &t.trace)
    }

    // ---- hooks called by the simulator --------------------------------

    /// Charges one cycle to a bucket and samples queue occupancy.
    pub(crate) fn cycle(
        &mut self,
        cdu_busy: bool,
        queue_blocked: bool,
        pipe_len: usize,
        qcoll_len: usize,
        qnoncoll_len: usize,
    ) {
        let c = &mut self.current;
        if cdu_busy {
            c.busy += 1;
        } else if queue_blocked {
            c.queue_full += 1;
        } else if pipe_len > 0 {
            c.pipe_fill += 1;
        } else if qcoll_len > 0 || qnoncoll_len > 0 {
            c.policy_hold += 1;
        } else {
            c.starved += 1;
        }
        self.qcoll_occupancy.bump(qcoll_len);
        self.qnoncoll_occupancy.bump(qnoncoll_len);
        self.pipe_occupancy.bump(pipe_len);
    }

    /// Closes out the motion: files its breakdown and advances the
    /// virtual-clock base so the next motion starts where this one ended.
    pub(crate) fn finish_motion(&mut self, latency_cycles: u64) {
        let m = std::mem::take(&mut self.current);
        debug_assert_eq!(m.total(), latency_cycles, "stall buckets must cover time");
        self.stalls.merge(&m);
        self.motion_stalls.push(m);
        self.base_cycle += latency_cycles;
    }

    /// A CDQ occupying CDU `cdu` for `dur` cycles from `cycle`.
    pub(crate) fn cdu_span(&mut self, cdu: usize, cycle: u64, dur: u64) {
        let base = self.base_cycle;
        if let Some(t) = &mut self.trace {
            t.trace.span(t.cdus[cdu], "cdq", base + cycle, dur);
        }
    }

    /// A collision outcome terminating the motion on CDU `cdu`.
    pub(crate) fn collision(&mut self, cdu: usize, cycle: u64) {
        let base = self.base_cycle;
        if let Some(t) = &mut self.trace {
            t.trace.instant(t.cdus[cdu], "collision", base + cycle);
        }
    }

    /// One pose leaving the OBB Generation Unit.
    pub(crate) fn pose(&mut self, cycle: u64) {
        let base = self.base_cycle;
        if let Some(t) = &mut self.trace {
            t.trace.instant(t.obbgen, "pose", base + cycle);
        }
    }

    /// A CHT prediction read or outcome write.
    pub(crate) fn cht_access(&mut self, write: bool, cycle: u64) {
        let base = self.base_cycle;
        if let Some(t) = &mut self.trace {
            let name = if write { "write" } else { "read" };
            t.trace.instant(t.cht, name, base + cycle);
        }
    }

    /// A queue push or pop; `depth` is the occupancy after the operation.
    pub(crate) fn queue_op(&mut self, kind: QueueKind, cycle: u64, depth: usize) {
        let base = self.base_cycle;
        if let Some(t) = &mut self.trace {
            let track = match kind {
                QueueKind::Coll => t.qcoll,
                QueueKind::Noncoll => t.qnoncoll,
            };
            t.trace.counter(track, "depth", base + cycle, depth as i64);
        }
    }
}

/// Renders an accelerator run as `copred_accel_*` Prometheus gauges:
/// event totals, stall attribution, queue occupancy, and the
/// per-component energy breakdown. The metric names are a stability
/// contract (see ROADMAP.md), pinned by the bench golden tests.
pub fn accel_prom_page(
    result: &AccelRunResult,
    stalls: &StallBreakdown,
    energy: &EnergyBreakdown,
) -> String {
    let mut p = PromBuf::new();
    let e: &AccelEvents = &result.events;
    p.family(
        "copred_accel_cycles_total",
        "counter",
        "Simulated cycles across all motions.",
    );
    p.sample("copred_accel_cycles_total", result.total_cycles as f64);
    p.family(
        "copred_accel_motions_total",
        "counter",
        "Motion checks simulated.",
    );
    p.sample("copred_accel_motions_total", result.motions as f64);
    p.family(
        "copred_accel_cdqs_total",
        "counter",
        "CDQs dispatched to CDUs.",
    );
    p.sample("copred_accel_cdqs_total", e.cdqs as f64);
    p.family(
        "copred_accel_obstacle_tests_total",
        "counter",
        "Obstacle-pair tests inside dispatched CDQs.",
    );
    p.sample("copred_accel_obstacle_tests_total", e.obstacle_tests as f64);
    p.family(
        "copred_accel_cht_reads_total",
        "counter",
        "CHT prediction reads.",
    );
    p.sample("copred_accel_cht_reads_total", e.cht_reads as f64);
    p.family(
        "copred_accel_cht_writes_total",
        "counter",
        "CHT outcome writes.",
    );
    p.sample("copred_accel_cht_writes_total", e.cht_writes as f64);
    p.family(
        "copred_accel_queue_ops_total",
        "counter",
        "Queue pushes and pops.",
    );
    p.sample("copred_accel_queue_ops_total", e.queue_ops as f64);
    p.family(
        "copred_accel_poses_generated_total",
        "counter",
        "Poses processed by the OBB Generation Unit.",
    );
    p.sample(
        "copred_accel_poses_generated_total",
        e.poses_generated as f64,
    );
    p.family(
        "copred_accel_stall_cycles_total",
        "counter",
        "Per-cycle attribution of simulator time by reason; sums to cycles.",
    );
    for (reason, cycles) in stalls.rows() {
        p.sample_labeled(
            "copred_accel_stall_cycles_total",
            &[("reason", reason)],
            cycles as f64,
        );
    }
    p.family(
        "copred_accel_energy_pj",
        "gauge",
        "Per-component energy breakdown; components sum to the total.",
    );
    for (component, pj) in energy.rows() {
        p.sample_labeled("copred_accel_energy_pj", &[("component", component)], pj);
    }
    p.family(
        "copred_accel_energy_total_pj",
        "gauge",
        "Total energy including CHT SRAM accesses.",
    );
    p.sample("copred_accel_energy_total_pj", energy.total_pj());
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_hist_grows_and_summarizes() {
        let mut h = OccupancyHist::default();
        for d in [0usize, 0, 1, 3, 3, 3] {
            h.bump(d);
        }
        assert_eq!(h.counts, vec![2, 1, 0, 3]);
        assert_eq!(h.samples(), 6);
        assert_eq!(h.max(), 3);
        assert!((h.mean() - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(OccupancyHist::default().mean(), 0.0);
        assert_eq!(OccupancyHist::default().max(), 0);
    }

    #[test]
    fn stall_rows_cover_every_bucket() {
        let s = StallBreakdown {
            busy: 1,
            queue_full: 2,
            pipe_fill: 3,
            policy_hold: 4,
            starved: 5,
        };
        assert_eq!(s.total(), 15);
        let sum: u64 = s.rows().iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, s.total(), "rows() must enumerate every bucket");
    }

    #[test]
    fn stall_profile_is_deterministic_on_the_virtual_clock() {
        // Same breakdown → byte-identical folded output, and the total
        // profile weight equals the cycle total (every bucket mapped).
        let s = StallBreakdown {
            busy: 700,
            queue_full: 150,
            pipe_fill: 80,
            policy_hold: 50,
            starved: 20,
        };
        let (a, b) = (stall_profile(&s), stall_profile(&s));
        assert_eq!(a.folded(), b.folded());
        assert_eq!(a.samples(), s.total());
        assert_eq!(
            a.folded(),
            "accel;decode 20\naccel;execute 700\naccel;predict 80\n\
             accel;queue_wait 150\naccel;schedule 50\n"
        );
        // Fractions are exact cycle ratios; queue-wait maps queue_full.
        let snap = a.snapshot();
        assert!((snap.queue_wait_fraction - 150.0 / 1000.0).abs() < 1e-12);
        // Zero buckets add no paths: the empty breakdown is an empty
        // profile, not a zero-weighted one.
        assert_eq!(stall_profile(&StallBreakdown::default()).samples(), 0);
    }
}
