//! Dadu-P-style octree-voxel accelerator with environment-space hashing
//! (paper §VII-2).
//!
//! Dadu-P (ref. \[31\]) precomputes an octree of the space each short (roadmap)
//! motion sweeps, then at runtime tests that octree against the voxels
//! occupied by environmental obstacles; a CDQ here is one motion-octree vs
//! voxel test. The hashing function is applied to the *voxel coordinates*:
//! a voxel seen colliding with a previous motion is likely to collide with
//! the next one, so predicted voxels are tested first. The paper reports,
//! for colliding motions relative to naive voxel order: CSP −74.3%,
//! CSP+COPU −81.2%, oracle limit −99%.

use copred_collision::Environment;
use copred_core::{Cht, ChtParams};
use copred_geometry::{Octree, VoxelCoord, VoxelGrid};
use copred_kinematics::{csp_order, Config, Robot};

/// Scheduling mode for the voxel stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DadupMode {
    /// Voxels in storage order.
    Naive,
    /// Coarse-step reordering of the voxel stream (ref. \[43\]).
    Csp,
    /// CSP plus the voxel-hash COPU with a bounded deferral queue.
    CspCopu,
    /// Perfect prediction: one CDQ per colliding motion.
    Oracle,
}

/// Configuration of the Dadu-P substrate.
#[derive(Debug, Clone)]
pub struct DadupConfig {
    /// Voxels per axis for the environment grid.
    pub voxel_resolution: u32,
    /// Maximum octree depth for motion swept volumes.
    pub octree_depth: u32,
    /// Poses per motion when sweeping the volume.
    pub sweep_samples: usize,
    /// CSP stride over the voxel stream.
    pub csp_step: usize,
    /// CHT parameters for the voxel-hash COPU.
    pub cht_params: ChtParams,
    /// Deferral (QNONCOLL) capacity; `usize::MAX` for the idealized queue.
    pub queue_len: usize,
    /// CHT seed.
    pub seed: u64,
}

impl Default for DadupConfig {
    fn default() -> Self {
        DadupConfig {
            voxel_resolution: 32,
            octree_depth: 5,
            sweep_samples: 10,
            csp_step: 7,
            cht_params: ChtParams::paper_arm(),
            queue_len: 56,
            seed: 11,
        }
    }
}

/// One precomputed motion: its swept-volume octree.
#[derive(Debug, Clone)]
pub struct PrecomputedMotion {
    octree: Octree,
}

/// Precomputes the octree of the volume `poses` sweep (the offline step of
/// Dadu-P). The swept volume is the union of all link AABBs over the sample
/// poses.
pub fn precompute_motion(robot: &Robot, poses: &[Config], cfg: &DadupConfig) -> PrecomputedMotion {
    let boxes: Vec<_> = poses
        .iter()
        .flat_map(|q| robot.fk(q).links.into_iter().map(|l| l.obb.aabb()))
        .collect();
    PrecomputedMotion {
        octree: Octree::build(robot.workspace(), cfg.octree_depth, &boxes),
    }
}

/// Result of checking one motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DadupMotionResult {
    /// Whether the motion's swept volume hits an occupied voxel.
    pub colliding: bool,
    /// Motion-octree vs voxel CDQs executed.
    pub cdqs: u64,
}

/// Hash code of an environment voxel: concatenated voxel coordinates packed
/// to fit the paper-sized 4096-entry table (5 bits x, 5 bits y, 2 bits z for
/// the default 32³ grid), so nearby voxels share table entries — the
/// locality COORD exploits, applied to environment space.
fn voxel_code(c: VoxelCoord) -> u64 {
    (u64::from(c.x & 0x1F) << 7) | (u64::from(c.y & 0x1F) << 2) | u64::from(c.z & 0x3)
}

/// The Dadu-P runtime: checks precomputed motions against the voxelized
/// environment with the selected voxel schedule.
#[derive(Debug)]
pub struct DadupSim {
    grid: VoxelGrid,
    voxels: Vec<VoxelCoord>,
    cht: Cht,
    cfg: DadupConfig,
}

impl DadupSim {
    /// Voxelizes `env` and prepares the runtime.
    pub fn new(env: &Environment, cfg: DadupConfig) -> Self {
        let grid = env.voxelize(cfg.voxel_resolution);
        let voxels: Vec<VoxelCoord> = grid.occupied_voxels().collect();
        let cht = Cht::new(cfg.cht_params, cfg.seed);
        DadupSim {
            grid,
            voxels,
            cht,
            cfg,
        }
    }

    /// Number of occupied environment voxels (CDQs per exhaustive check).
    pub fn voxel_count(&self) -> usize {
        self.voxels.len()
    }

    /// Clears voxel-collision history (environment re-mapped).
    pub fn reset(&mut self) {
        self.cht.reset();
    }

    /// Checks one precomputed motion under `mode`.
    pub fn run_motion(&mut self, motion: &PrecomputedMotion, mode: DadupMode) -> DadupMotionResult {
        let n = self.voxels.len();
        let base_order: Vec<usize> = match mode {
            DadupMode::Naive => (0..n).collect(),
            _ => csp_order(n, self.cfg.csp_step),
        };
        let grid = &self.grid;
        let voxels = &self.voxels;
        let cht = &mut self.cht;
        let test = |i: usize, executed: &mut u64, cht: &mut Cht, observe: bool| -> bool {
            *executed += 1;
            let v = voxels[i];
            let hit = motion.octree.intersects(&grid.voxel_aabb(v));
            if observe {
                cht.observe(voxel_code(v), hit);
            }
            hit
        };
        let mut executed = 0u64;
        match mode {
            DadupMode::Oracle => {
                let colliding = voxels
                    .iter()
                    .any(|&v| motion.octree.intersects(&grid.voxel_aabb(v)));
                DadupMotionResult {
                    colliding,
                    cdqs: if colliding { 1 } else { n as u64 },
                }
            }
            DadupMode::Naive | DadupMode::Csp => {
                for i in base_order {
                    if test(i, &mut executed, cht, false) {
                        return DadupMotionResult {
                            colliding: true,
                            cdqs: executed,
                        };
                    }
                }
                DadupMotionResult {
                    colliding: false,
                    cdqs: executed,
                }
            }
            DadupMode::CspCopu => {
                // Bounded deferral: unpredicted voxels wait in a queue of
                // size `queue_len`; overflow forces execution of the oldest
                // deferred voxel (the limited-queue effect the paper notes).
                let mut queue: Vec<usize> = Vec::new();
                for i in base_order {
                    let predicted = cht.predict(voxel_code(voxels[i]));
                    if predicted {
                        if test(i, &mut executed, cht, true) {
                            return DadupMotionResult {
                                colliding: true,
                                cdqs: executed,
                            };
                        }
                    } else if queue.len() < self.cfg.queue_len {
                        queue.push(i);
                    } else {
                        let oldest = queue.remove(0);
                        queue.push(i);
                        if test(oldest, &mut executed, cht, true) {
                            return DadupMotionResult {
                                colliding: true,
                                cdqs: executed,
                            };
                        }
                    }
                }
                for i in queue {
                    if test(i, &mut executed, cht, true) {
                        return DadupMotionResult {
                            colliding: true,
                            cdqs: executed,
                        };
                    }
                }
                DadupMotionResult {
                    colliding: false,
                    cdqs: executed,
                }
            }
        }
    }

    /// Checks a workload, returning `(results, cdqs on colliding motions)` —
    /// the paper's §VII-2 metric is the reduction for colliding motions.
    pub fn run_workload(
        &mut self,
        motions: &[PrecomputedMotion],
        mode: DadupMode,
    ) -> (Vec<DadupMotionResult>, u64) {
        let results: Vec<_> = motions.iter().map(|m| self.run_motion(m, mode)).collect();
        let colliding_cdqs = results.iter().filter(|r| r.colliding).map(|r| r.cdqs).sum();
        (results, colliding_cdqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion, Robot};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Robot, Environment, Vec<PrecomputedMotion>) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![
                Aabb::new(Vec3::new(0.2, -0.6, -0.05), Vec3::new(0.5, 0.4, 0.05)),
                Aabb::new(Vec3::new(-0.6, 0.3, -0.05), Vec3::new(-0.3, 0.7, 0.05)),
            ],
        );
        let cfg = DadupConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let motions: Vec<_> = (0..30)
            .map(|_| {
                let m = Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                );
                precompute_motion(&robot, &m.discretize(cfg.sweep_samples), &cfg)
            })
            .collect();
        (robot, env, motions)
    }

    #[test]
    fn modes_agree_on_outcomes() {
        let (_, env, motions) = setup();
        let mut sims: Vec<DadupSim> = (0..4)
            .map(|_| DadupSim::new(&env, DadupConfig::default()))
            .collect();
        let modes = [
            DadupMode::Naive,
            DadupMode::Csp,
            DadupMode::CspCopu,
            DadupMode::Oracle,
        ];
        let outcomes: Vec<Vec<bool>> = sims
            .iter_mut()
            .zip(modes)
            .map(|(s, m)| {
                s.run_workload(&motions, m)
                    .0
                    .iter()
                    .map(|r| r.colliding)
                    .collect()
            })
            .collect();
        for o in &outcomes[1..] {
            assert_eq!(o, &outcomes[0], "scheduling changed an outcome");
        }
        // The scene must exercise both outcomes.
        assert!(outcomes[0].iter().any(|&c| c));
        assert!(outcomes[0].iter().any(|&c| !c));
    }

    #[test]
    fn ordering_hierarchy_on_colliding_motions() {
        let (_, env, motions) = setup();
        let run = |mode| {
            let mut s = DadupSim::new(&env, DadupConfig::default());
            s.run_workload(&motions, mode).1
        };
        let naive = run(DadupMode::Naive);
        let csp = run(DadupMode::Csp);
        let copu = run(DadupMode::CspCopu);
        let oracle = run(DadupMode::Oracle);
        assert!(csp < naive, "csp {csp} !< naive {naive}");
        assert!(copu < csp, "copu {copu} !< csp {csp}");
        assert!(oracle <= copu, "oracle {oracle} !<= copu {copu}");
    }

    #[test]
    fn oracle_is_one_cdq_per_colliding_motion() {
        let (_, env, motions) = setup();
        let mut s = DadupSim::new(&env, DadupConfig::default());
        let (results, cdqs) = s.run_workload(&motions, DadupMode::Oracle);
        let colliding = results.iter().filter(|r| r.colliding).count() as u64;
        assert_eq!(cdqs, colliding);
    }

    #[test]
    fn smaller_queue_gives_less_benefit() {
        let (_, env, motions) = setup();
        let run = |queue_len| {
            let cfg = DadupConfig {
                queue_len,
                ..Default::default()
            };
            let mut s = DadupSim::new(&env, cfg);
            s.run_workload(&motions, DadupMode::CspCopu).1
        };
        let tiny = run(2);
        let big = run(100_000);
        // Forced early execution of deferred voxels occasionally gets lucky,
        // so allow a small tolerance around the expected ordering.
        assert!(
            tiny as f64 >= big as f64 * 0.95,
            "tiny queue {tiny} beat big queue {big} by more than noise"
        );
    }

    #[test]
    fn octree_precompute_covers_motion() {
        let robot: Robot = presets::planar_2d().into();
        let cfg = DadupConfig::default();
        let m = Motion::new(Config::new(vec![-0.5, 0.0]), Config::new(vec![0.5, 0.0]));
        let poses = m.discretize(cfg.sweep_samples);
        let pre = precompute_motion(&robot, &poses, &cfg);
        // The swept octree must contain every sample pose's disc center.
        for q in &poses {
            assert!(pre.octree.contains(Vec3::planar(q[0], q[1])));
        }
    }

    #[test]
    fn empty_environment_has_no_cdqs() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let cfg = DadupConfig::default();
        let m = precompute_motion(
            &robot,
            &Motion::new(Config::zeros(2), Config::new(vec![0.5, 0.5])).discretize(5),
            &cfg,
        );
        let mut s = DadupSim::new(&env, cfg);
        assert_eq!(s.voxel_count(), 0);
        let r = s.run_motion(&m, DadupMode::CspCopu);
        assert!(!r.colliding);
        assert_eq!(r.cdqs, 0);
    }
}
