//! The fleet router: one wire endpoint fronting N `copred_server`
//! backends.
//!
//! The router speaks the exact client protocol on both sides. Sessions
//! are placed by rendezvous hash of their store fingerprint (sessions
//! without one hash their router-assigned token instead); the router
//! owns the session-id namespace, so a client never learns — or cares —
//! which backend answered. Per-backend `retry_after` backpressure is
//! absorbed here, like the recording client absorbed it.
//!
//! **Warm-state replication.** After every successful check batch on a
//! fingerprinted session the router pulls the owner's live table image
//! (`snap_session`) and caches the encoded snapshot. When a backend dies
//! (transport failure, or declared dead by the operator), each of its
//! sessions re-homes to the rendezvous survivor: the cached replica is
//! pushed (`snap_push`, a pure max-merge join on the receiver), the
//! session re-opens with its original parameters, and the warm start
//! restores the exact cells and scheduler state — the op stream
//! continues bit-identically as long as the replica was current (i.e.
//! the backend died between batches; a mid-batch death replays the batch
//! against the restored pre-batch state, an at-least-once seam DESIGN.md
//! documents). On close the final replica is gossiped to every live
//! peer, so the fingerprint's next session warm-starts anywhere.
//!
//! The router keeps its own [`SessionLedger`] per session, accumulated
//! from forwarded results. Unlike the backend's per-session counters it
//! survives migration, which is what lets the conformance harness hold a
//! migrated session's ledger against an unmigrated one.

use crate::hash;
use copred_replay::ReplayBackend;
use copred_service::protocol::{Request, Response, ServiceError};
use copred_service::{fleet_stats, Metrics, ServiceClient};
use copred_store::crc::crc32;
use copred_store::SNAPSHOT_VERSION;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// How many `retry_after` answers the router absorbs per op before
/// declaring the backend wedged.
const MAX_RETRIES: usize = 64;

/// Deterministic per-session counters mirrored at the router from
/// forwarded check results. The backend's own ledger fragments across a
/// migration; this one follows the session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionLedger {
    /// Motion checks answered.
    pub checks: u64,
    /// Checks that reported a collision.
    pub collisions: u64,
    /// CDQs the backends executed for this session.
    pub cdqs_issued: u64,
    /// CDQs the session's motions decomposed into.
    pub cdqs_total: u64,
    /// Obstacle-pair tests inside the executed CDQs.
    pub obstacle_tests: u64,
    /// Times the session re-homed to a survivor.
    pub migrations: u64,
}

/// One backend in the membership list.
struct Node {
    addr: String,
    client: Option<ServiceClient>,
    alive: bool,
}

/// Where a router session lives right now.
struct Route {
    node: usize,
    remote: u64,
    /// The original `open`, replayed verbatim on failover.
    open: Request,
    /// Rendezvous key (fingerprint, or a salted token for fp-less
    /// sessions) — fixed at open so failover re-homes deterministically.
    key: u64,
    fp: Option<u64>,
    /// Latest encoded `CPRDSNAP` pulled from the owner; the failover
    /// warm-start source.
    replica: Option<Vec<u8>>,
    ledger: SessionLedger,
    closed: bool,
}

/// A protocol-transparent router over N backends. Single-threaded by
/// design (wrap in a mutex to front concurrent connections, as
/// `copred_fleet route` does); implements [`ReplayBackend`] so replay
/// and conformance tooling drive a fleet exactly like a single node.
pub struct Router {
    nodes: Vec<Node>,
    routes: BTreeMap<u64, Route>,
    next_id: u64,
    /// Router-local mirror of the global counters, answering fleet-wide
    /// `stats` without fanning out to backends mid-replay.
    metrics: Metrics,
    label: String,
}

impl Router {
    /// A router over the given backend addresses. Connections are opened
    /// lazily, so construction cannot fail.
    pub fn new(addrs: &[String]) -> Router {
        assert!(!addrs.is_empty(), "a fleet needs at least one backend");
        Router {
            nodes: addrs
                .iter()
                .map(|a| Node {
                    addr: a.clone(),
                    client: None,
                    alive: true,
                })
                .collect(),
            routes: BTreeMap::new(),
            next_id: 0,
            metrics: Metrics::new(),
            label: "fleet".to_string(),
        }
    }

    /// A node-less placeholder for swap-out moves (see
    /// [`crate::FleetBackend::into_router`]); never routes anything.
    pub(crate) fn placeholder() -> Router {
        Router {
            nodes: Vec::new(),
            routes: BTreeMap::new(),
            next_id: 0,
            metrics: Metrics::new(),
            label: "fleet".to_string(),
        }
    }

    /// Renames the router (useful for A/B reports).
    #[must_use]
    pub fn labeled(mut self, label: &str) -> Router {
        self.label = label.to_string();
        self
    }

    /// Declares a backend dead (an operator/watchdog signal). Its
    /// sessions re-home lazily, on their next op.
    pub fn mark_dead(&mut self, node: usize) {
        self.nodes[node].alive = false;
        self.nodes[node].client = None;
    }

    /// Live backends.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Which backend a session currently lives on.
    pub fn node_of(&self, session: u64) -> Option<usize> {
        self.routes.get(&session).map(|r| r.node)
    }

    /// The router's ledger for a session (kept after close).
    pub fn ledger(&self, session: u64) -> Option<&SessionLedger> {
        self.routes.get(&session).map(|r| &r.ledger)
    }

    /// Every ledger, in session order.
    pub fn ledgers(&self) -> Vec<(u64, SessionLedger)> {
        self.routes
            .iter()
            .map(|(&id, r)| (id, r.ledger.clone()))
            .collect()
    }

    fn alive_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive)
            .collect()
    }

    /// One request/response exchange with a backend. Any transport
    /// failure marks the node dead — the caller decides whether failover
    /// applies.
    fn raw_call(&mut self, node: usize, req: &Request) -> Result<Response, String> {
        let n = &mut self.nodes[node];
        if !n.alive {
            return Err(format!("backend {node} ({}) is down", n.addr));
        }
        if n.client.is_none() {
            match ServiceClient::connect(&n.addr) {
                Ok(c) => n.client = Some(c),
                Err(e) => {
                    self.mark_dead(node);
                    return Err(format!("backend {node} connect: {e}"));
                }
            }
        }
        match n.client.as_mut().expect("client just ensured").call(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.mark_dead(node);
                Err(format!("backend {node} transport: {e}"))
            }
        }
    }

    /// [`Self::raw_call`] with `retry_after` absorbed by sleeping as
    /// told, up to [`MAX_RETRIES`] times.
    fn absorb_call(&mut self, node: usize, req: &Request) -> Result<Response, String> {
        let mut retries = 0;
        loop {
            match self.raw_call(node, req)? {
                Response::Error(ServiceError::RetryAfter { ms, message }) => {
                    if retries >= MAX_RETRIES {
                        return Err(format!(
                            "backend {node} backpressured {retries} times: {message}"
                        ));
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(ms.max(1)));
                }
                resp => return Ok(resp),
            }
        }
    }

    /// Pulls the live table image of `remote` on `node`. Best-effort: a
    /// session without a fingerprint answers `snap_none`, and transport
    /// errors surface to the caller only as `None` (the cached replica,
    /// if any, stays).
    fn pull_replica(&mut self, node: usize, remote: u64) -> Option<Vec<u8>> {
        match self.absorb_call(node, &Request::SnapSession { session: remote }) {
            Ok(Response::Snap { payload, .. }) => Some(payload),
            Ok(Response::SnapNone { .. }) => None,
            Ok(_) | Err(_) => {
                fleet_stats().backend_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Pushes an encoded snapshot to `node`; true when applied.
    fn push_replica(&mut self, node: usize, fp: u64, payload: &[u8]) -> bool {
        let req = Request::SnapPush {
            fp,
            version: SNAPSHOT_VERSION,
            crc: crc32(payload),
            payload: payload.to_vec(),
        };
        match self.absorb_call(node, &req) {
            Ok(Response::SnapApplied { .. }) => {
                fleet_stats()
                    .snapshots_shipped
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            Ok(_) | Err(_) => {
                fleet_stats().backend_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Re-homes a session to the rendezvous survivor: push the cached
    /// replica (warm-start source), replay the original `open`, remap
    /// the remote token.
    fn migrate(&mut self, session: u64) -> Result<(), String> {
        let (key, fp, open, replica) = {
            let r = self
                .routes
                .get(&session)
                .ok_or_else(|| format!("no route for session {session}"))?;
            (r.key, r.fp, r.open.clone(), r.replica.clone())
        };
        loop {
            let target = hash::pick(key, self.alive_nodes())
                .ok_or_else(|| "no live backends to fail over to".to_string())?;
            if let (Some(fp), Some(replica)) = (fp, &replica) {
                // A rejected push (e.g. the fingerprint is leased there)
                // degrades to a cold re-open — never a stall.
                self.push_replica(target, fp, replica);
            }
            match self.absorb_call(target, &open) {
                Ok(Response::Session {
                    id: remote,
                    warm: _,
                }) => {
                    let r = self.routes.get_mut(&session).expect("route checked above");
                    r.node = target;
                    r.remote = remote;
                    r.ledger.migrations += 1;
                    fleet_stats().failovers.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(Response::Error(e)) => {
                    return Err(format!("failover re-open on backend {target}: {e}"))
                }
                Ok(other) => {
                    return Err(format!("failover re-open answered {other:?}"));
                }
                // The survivor died too; rendezvous again over whoever
                // is left.
                Err(_) => continue,
            }
        }
    }

    /// Forwards a session-scoped request, failing over (at most once per
    /// surviving membership) when the owner is unreachable.
    fn forward(&mut self, session: u64, make: impl Fn(u64) -> Request) -> Result<Response, String> {
        loop {
            let (node, remote, alive) = {
                let r = self
                    .routes
                    .get(&session)
                    .ok_or_else(|| format!("no route for session {session}"))?;
                (r.node, r.remote, self.nodes[r.node].alive)
            };
            if !alive {
                self.migrate(session)?;
                continue;
            }
            match self.absorb_call(node, &make(remote)) {
                Ok(resp) => return Ok(resp),
                // Transport failure marked the node dead; the next lap
                // migrates and retries. `migrate` errors out when no
                // backend is left, so this terminates.
                Err(_) => continue,
            }
        }
    }

    /// Gossips a closing session's final replica to every live peer that
    /// wants it (idempotent: peers already holding this exact image
    /// decline the offer).
    fn gossip(&mut self, owner: usize, fp: u64, payload: &[u8]) {
        for peer in self.alive_nodes() {
            if peer == owner {
                continue;
            }
            let offer = Request::SnapOffer {
                fp,
                version: SNAPSHOT_VERSION,
                crc: crc32(payload),
                len: payload.len() as u64,
            };
            match self.absorb_call(peer, &offer) {
                Ok(Response::SnapWant { want: true, .. }) => {
                    self.push_replica(peer, fp, payload);
                }
                Ok(Response::SnapWant { want: false, .. }) => {}
                Ok(_) | Err(_) => {
                    fleet_stats().backend_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn handle_open(&mut self, req: &Request) -> Result<Response, String> {
        let Request::Open { fp, .. } = req else {
            unreachable!("handle_open called with {req:?}");
        };
        let fp = *fp;
        // Fingerprinted sessions co-locate with their persisted state;
        // anonymous ones spread by (salted) token.
        let key = fp.unwrap_or(0xF1EE_7000 ^ hash::score(self.next_id, 0));
        loop {
            let target = hash::pick(key, self.alive_nodes())
                .ok_or_else(|| "no live backends".to_string())?;
            match self.absorb_call(target, req) {
                Ok(Response::Session { id: remote, warm }) => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.routes.insert(
                        id,
                        Route {
                            node: target,
                            remote,
                            open: req.clone(),
                            key,
                            fp,
                            replica: None,
                            ledger: SessionLedger::default(),
                            closed: false,
                        },
                    );
                    self.metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    fleet_stats()
                        .sessions_routed
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(Response::Session { id, warm });
                }
                Ok(resp) => return Ok(resp), // protocol error: no route made
                Err(_) => continue,          // node died; rendezvous over the rest
            }
        }
    }

    fn note_results(&mut self, session: u64, resp: &Response) {
        let Response::Results { results, .. } = resp else {
            return;
        };
        let ledger = &mut self
            .routes
            .get_mut(&session)
            .expect("results for a routed session")
            .ledger;
        for r in results {
            ledger.checks += 1;
            ledger.collisions += u64::from(r.colliding);
            ledger.cdqs_issued += r.cdqs_executed;
            ledger.cdqs_total += r.cdqs_total;
            ledger.obstacle_tests += r.obstacle_tests;
            self.metrics.checks.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .cdqs_issued
                .fetch_add(r.cdqs_executed, Ordering::Relaxed);
            self.metrics
                .cdqs_total
                .fetch_add(r.cdqs_total, Ordering::Relaxed);
        }
    }

    /// Refreshes the cached warm-state replica after a state-changing op.
    fn refresh_replica(&mut self, session: u64) {
        let Some(r) = self.routes.get(&session) else {
            return;
        };
        if r.fp.is_none() {
            return;
        }
        let (node, remote) = (r.node, r.remote);
        if let Some(payload) = self.pull_replica(node, remote) {
            self.routes
                .get_mut(&session)
                .expect("route checked above")
                .replica = Some(payload);
        }
    }

    fn live_session(&self, session: u64) -> Result<(), ServiceError> {
        match self.routes.get(&session) {
            Some(r) if !r.closed => Ok(()),
            _ => Err(ServiceError::NoSession(session)),
        }
    }

    /// Answers one client request, routing and failing over as needed.
    ///
    /// # Errors
    ///
    /// Fleet-fatal conditions only (every backend dead, retry
    /// exhaustion); per-op protocol errors come back as
    /// [`Response::Error`].
    pub fn call(&mut self, req: &Request) -> Result<Response, String> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Open { .. } => self.handle_open(req),
            Request::CheckMotion {
                session,
                motions,
                trace,
                ..
            } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                let (motions, trace) = (motions.clone(), *trace);
                let t0 = Instant::now();
                let resp = self.forward(*session, move |remote| Request::CheckMotion {
                    session: remote,
                    motions: motions.clone(),
                    trace,
                })?;
                self.metrics
                    .check_latency
                    .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                self.note_results(*session, &resp);
                if matches!(resp, Response::Results { .. }) {
                    self.refresh_replica(*session);
                }
                Ok(resp)
            }
            Request::CheckPose {
                session,
                motion,
                trace,
            } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                let (motion, trace) = (motion.clone(), *trace);
                let resp = self.forward(*session, move |remote| Request::CheckPose {
                    session: remote,
                    motion: motion.clone(),
                    trace,
                })?;
                self.note_results(*session, &resp);
                if matches!(resp, Response::Results { .. }) {
                    self.refresh_replica(*session);
                }
                Ok(resp)
            }
            Request::ResetCht { session } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                let resp =
                    self.forward(*session, |remote| Request::ResetCht { session: remote })?;
                if resp == Response::ResetDone {
                    self.refresh_replica(*session);
                }
                Ok(resp)
            }
            Request::Close { session } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                // The close-time replica is the gossip payload: pulled
                // before the backend tears the session down.
                self.refresh_replica(*session);
                let resp = self.forward(*session, |remote| Request::Close { session: remote })?;
                if resp == Response::Closed {
                    self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    let (owner, gossip) = {
                        let r = self.routes.get_mut(session).expect("route checked above");
                        r.closed = true;
                        (r.node, r.fp.zip(r.replica.clone()))
                    };
                    if let Some((fp, payload)) = gossip {
                        self.gossip(owner, fp, &payload);
                    }
                }
                Ok(resp)
            }
            Request::Stats { session: None } => {
                // Answered locally: backends each hold a shard of the
                // truth, the router saw every op.
                let open = self.routes.values().filter(|r| !r.closed).count();
                Ok(Response::Stats(self.metrics.stat_lines(open)))
            }
            Request::Stats {
                session: Some(session),
            } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                self.forward(*session, |remote| Request::Stats {
                    session: Some(remote),
                })
            }
            Request::Dump => {
                let mut entries = 0;
                for node in self.alive_nodes() {
                    if let Ok(Response::DumpDone { entries: n }) =
                        self.absorb_call(node, &Request::Dump)
                    {
                        entries += n;
                    }
                }
                Ok(Response::DumpDone { entries })
            }
            // Replication ops route by fingerprint (or session) like any
            // other traffic, so fleet tooling can address "whoever owns
            // this state" without knowing the membership.
            Request::SnapGet { fp }
            | Request::SnapOffer { fp, .. }
            | Request::SnapPush { fp, .. } => {
                let target = hash::pick(*fp, self.alive_nodes())
                    .ok_or_else(|| "no live backends".to_string())?;
                self.absorb_call(target, req)
            }
            Request::SnapSession { session } => {
                if let Err(e) = self.live_session(*session) {
                    return Ok(Response::Error(e));
                }
                self.forward(*session, |remote| Request::SnapSession { session: remote })
            }
        }
    }
}

impl ReplayBackend for Router {
    fn label(&self) -> &str {
        &self.label
    }

    fn call(&mut self, req: &Request) -> Result<Response, String> {
        Router::call(self, req)
    }
}
