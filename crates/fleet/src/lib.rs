//! `copred-fleet`: multi-node session sharding with warm-state
//! replication.
//!
//! One `copred_server` holds every leased CHT shard in one process; this
//! crate scales the same wire contract across N of them. Three pieces:
//!
//! - [`hash`] — rendezvous (highest-random-weight) hashing. Sessions are
//!   placed by their store fingerprint, so adding a node moves only
//!   ~1/N of the keyspace and every displaced key moves *to* the new
//!   node, never between survivors.
//! - [`router`] — a protocol-transparent front for N backends. It
//!   forwards frames verbatim (rewriting only the session token it
//!   owns), absorbs per-backend `retry_after` backpressure, pulls a
//!   warm-state replica (`snap_session`) after every successful check
//!   batch on fingerprinted sessions, and on backend death re-opens the
//!   session on the rendezvous survivor after pushing that replica —
//!   the survivor warm-starts with the exact cells and scheduler state,
//!   so the stream continues bit-identically. On close the replica is
//!   gossiped to every peer (`snap_offer`/`snap_push`), making any of
//!   them a warm home for the fingerprint's next session.
//! - [`backend`] — [`backend::FleetBackend`], a
//!   [`copred_replay::ReplayBackend`] over an owned in-process fleet
//!   (N store-enabled servers + a router), so `copred_replay ab` can
//!   hold a fleet bit-for-bit against a single node and the conformance
//!   harness can kill a backend mid-stream and audit the continuation.
//!
//! Replication is a pure state join: the receiver folds an incoming
//! snapshot with [`copred_store::TableImage::merge_max`] (per-cell
//! saturating max — commutative, associative, idempotent), so duplicate
//! and out-of-order pushes converge. Torn, version-skewed, or corrupt
//! pushes are rejected at the wire with structured errors and the
//! receiver stays cold-startable; see the `snapshot_transfer` tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod hash;
pub mod router;

pub use backend::FleetBackend;
pub use hash::{pick, score};
pub use router::{Router, SessionLedger};
