//! Fleet front and fleet replay driver.
//!
//! ```text
//! copred_fleet <command> [key=value ...]
//!
//! route   addrs=HOST:PORT,HOST:PORT[,...] [listen=127.0.0.1:0]
//!     Front an existing set of copred_server backends: listen for the
//!     usual length-prefixed wire protocol, rendezvous-route sessions by
//!     store fingerprint, replicate warm state on close, and fail
//!     sessions over when a backend dies.
//!
//! up      [backends=3] [listen=127.0.0.1:0]
//!     Spawn a local fleet (store-enabled servers on ephemeral ports and
//!     temp stores) and front it; the one-command quickstart.
//!
//! verify  log=FILE [backends=2]
//!     The CI fleet gate: the CPRDLOG must replay bit-identically
//!     through a fresh fleet. Exits non-zero on any divergence.
//!
//! ab      log=FILE [backends=2] [bench_json=PATH]
//!     Replay one log against a single in-process node and a fleet,
//!     and report the diff.
//! ```

use copred_fleet::{FleetBackend, Router};
use copred_replay::{
    ab_report, read_log_file, run_ab, run_replay, InProcessBackend, ReplayLog, ReplayOptions,
    ReplayOutcome,
};
use copred_service::protocol::{Request, Response, ServiceError};
use copred_trace::frame::{read_text_frame, write_text_frame};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

/// Parsed `key=value` arguments for one subcommand, validated against its
/// flag table.
#[derive(Debug)]
struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `args`, rejecting keys outside `valid` with an error that
    /// lists every flag the subcommand accepts.
    fn parse(command: &str, args: &[String], valid: &[&str]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        for arg in args {
            let (key, value) = arg
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{arg}'"))?;
            if !valid.contains(&key) {
                return Err(format!(
                    "unknown flag '{key}' for '{command}' (valid flags: {})",
                    valid.join(", ")
                ));
            }
            values.insert(key.to_string(), value.to_string());
        }
        Ok(Flags { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}=..."))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad number for {key}: '{v}'")),
        }
    }
}

fn load(flags: &Flags) -> Result<ReplayLog, String> {
    let path = flags.require("log")?;
    let log = read_log_file(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if !log.complete {
        return Err(format!(
            "{path} has a torn tail; refusing a fleet gate on it"
        ));
    }
    Ok(log)
}

/// Serves the wire protocol on `listener`, answering every frame through
/// the shared router. Parse failures answer `err bad_request` on the
/// offending connection and keep serving, exactly like `copred_server`;
/// router-fatal failures (all backends dead, retries exhausted) answer
/// `err busy` rather than dropping the stream.
fn serve(listener: TcpListener, router: Arc<Mutex<Router>>) -> ! {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        let router = Arc::clone(&router);
        std::thread::spawn(move || handle_conn(stream, &router));
    }
}

fn handle_conn(stream: TcpStream, router: &Mutex<Router>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_text_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(_) => {
                let resp = Response::Error(ServiceError::BadRequest("bad frame".into()));
                let _ = write_text_frame(&mut writer, &resp.to_text());
                return;
            }
        };
        let response = match Request::from_text(&payload) {
            Err(reason) => Response::Error(ServiceError::BadRequest(reason)),
            Ok(req) => match router.lock().expect("router lock").call(&req) {
                Ok(resp) => resp,
                Err(reason) => Response::Error(ServiceError::Busy(format!("fleet: {reason}"))),
            },
        };
        if write_text_frame(&mut writer, &response.to_text()).is_err() {
            return;
        }
    }
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("route", args, &["addrs", "listen"])?;
    let addrs: Vec<String> = flags
        .require("addrs")?
        .split(',')
        .map(str::to_string)
        .collect();
    if addrs.is_empty() {
        return Err("addrs needs at least one HOST:PORT".to_string());
    }
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(listen).map_err(|e| format!("binding {listen}: {e}"))?;
    println!(
        "copred_fleet: routing {} backends on {}",
        addrs.len(),
        listener.local_addr().map_err(|e| e.to_string())?
    );
    let _ = std::io::stdout().flush();
    serve(listener, Arc::new(Mutex::new(Router::new(&addrs))))
}

fn cmd_up(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("up", args, &["backends", "listen"])?;
    let n = flags.usize_or("backends", 3)?;
    if n == 0 {
        return Err("backends must be at least 1".to_string());
    }
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(listen).map_err(|e| format!("binding {listen}: {e}"))?;
    // The FleetBackend owns the servers and their temp stores; it must
    // outlive serve(), which never returns, so hold it here and share
    // only the router. The servers are unreachable through the backend
    // from this point on — every frame goes through the router.
    let fleet = FleetBackend::start(n).map_err(|e| format!("starting fleet: {e}"))?;
    println!(
        "copred_fleet: {} local backends up, fronting on {}",
        fleet.len(),
        listener.local_addr().map_err(|e| e.to_string())?
    );
    let _ = std::io::stdout().flush();
    let (router, _keepalive) = fleet.into_router();
    serve(listener, Arc::new(Mutex::new(router)))
}

fn print_outcome(label: &str, out: &ReplayOutcome) {
    println!("backend        {label}");
    println!("ops            {}", out.ops);
    println!("checks         {}", out.checks);
    println!("collisions     {}", out.collisions);
    println!("cdqs_issued    {}", out.cdqs_issued);
    println!("mismatches     {}", out.mismatches.len());
    println!("backend_errors {}", out.backend_errors);
    println!("wall_s         {:.3}", out.wall_ns as f64 / 1e9);
    for d in out.mismatches.iter().take(5) {
        eprintln!(
            "mismatch at op {} ({} {}): expected {:?}, got {:?}",
            d.idx, d.verb, d.tag, d.expected, d.actual
        );
    }
    if out.mismatches.len() > 5 {
        eprintln!("... and {} more mismatches", out.mismatches.len() - 5);
    }
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("verify", args, &["log", "backends"])?;
    let log = load(&flags)?;
    let n = flags.usize_or("backends", 2)?;
    let opts = ReplayOptions::default(); // sequential, compare on

    // Pass 1: bit-identity of a fleet replay against the recording.
    let mut fleet = FleetBackend::start(n).map_err(|e| format!("starting fleet: {e}"))?;
    let first = run_replay(&log, &mut fleet, &opts).map_err(|e| e.to_string())?;
    if !first.is_identical() {
        print_outcome("fleet", &first);
        return Err(format!(
            "fleet replay diverged from the recording ({} mismatches)",
            first.mismatches.len()
        ));
    }
    println!(
        "fleet({n})       identical ({} ops, {} checks)",
        first.ops, first.checks
    );

    // Pass 2: determinism — a second fresh fleet must answer exactly
    // like the first (routing must not leak into responses).
    let mut fleet2 = FleetBackend::start(n).map_err(|e| format!("starting fleet: {e}"))?;
    let second = run_replay(&log, &mut fleet2, &opts).map_err(|e| e.to_string())?;
    if second.responses != first.responses {
        return Err("two fleet replays of the same log diverged".to_string());
    }
    println!("determinism    identical (double replay)");
    println!("verify         PASS");
    Ok(())
}

fn cmd_ab(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("ab", args, &["log", "backends", "bench_json"])?;
    let log = load(&flags)?;
    let n = flags.usize_or("backends", 2)?;
    let opts = ReplayOptions::default();
    let mut single = InProcessBackend::with_server_defaults().labeled("single");
    let mut fleet = FleetBackend::start(n)
        .map_err(|e| format!("starting fleet: {e}"))?
        .labeled("fleet");
    let ab = run_ab(&log, &mut single, &mut fleet, &opts).map_err(|e| e.to_string())?;
    println!("=== single ===");
    print_outcome(&ab.label_a, &ab.a);
    println!("=== fleet({n}) ===");
    print_outcome(&ab.label_b, &ab.b);
    println!("=== diff ===");
    println!("responses_identical {}", ab.responses_identical());
    println!("diverging_ops       {}", ab.diverging_ops().len());
    if let Some(path) = flags.get("bench_json") {
        let report = ab_report(&log, &ab, "fleet_ab");
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("bench_json          {path}");
    }
    if !ab.responses_identical() {
        return Err(format!(
            "fleet diverged from single node on {} ops",
            ab.diverging_ops().len()
        ));
    }
    Ok(())
}

const USAGE: &str = "usage: copred_fleet <route|up|verify|ab> [key=value ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "route" => cmd_route(rest),
        "up" => cmd_up(rest),
        "verify" => cmd_verify(rest),
        "ab" => cmd_ab(rest),
        other => {
            eprintln!("copred_fleet: unknown command '{other}'\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("copred_fleet: {e}");
            let _ = std::io::stderr().flush();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(argv: &[&str]) -> Vec<String> {
        argv.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_fails_fast_and_lists_valid_flags() {
        let valid = &["log", "backends"];
        let err = Flags::parse("verify", &strs(&["log=a.cprlog", "backend=2"]), valid).unwrap_err();
        assert!(err.contains("unknown flag 'backend' for 'verify'"), "{err}");
        for flag in valid {
            assert!(err.contains(flag), "error should list {flag}: {err}");
        }
    }

    #[test]
    fn bare_word_is_an_error() {
        let err = Flags::parse("ab", &strs(&["log"]), &["log"]).unwrap_err();
        assert!(err.contains("expected key=value"), "{err}");
    }

    #[test]
    fn numeric_flags_validate() {
        let flags = Flags::parse("up", &strs(&["backends=4"]), &["backends", "listen"]).unwrap();
        assert_eq!(flags.usize_or("backends", 3).unwrap(), 4);
        assert_eq!(flags.usize_or("listen_missing_ok", 3).unwrap(), 3);
        let bad = Flags::parse("up", &strs(&["backends=lots"]), &["backends"]).unwrap();
        assert!(bad.usize_or("backends", 3).is_err());
    }
}
