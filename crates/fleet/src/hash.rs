//! Rendezvous (highest-random-weight) hashing.
//!
//! Every (key, node) pair gets a deterministic pseudo-random score; a key
//! lives on the reachable node with the highest score. No ring, no
//! virtual nodes, no rebalancing state: membership *is* the routing
//! table. When a node joins, a key moves only if the new node now holds
//! its maximum — about 1/N of keys, all of them moving to the joiner —
//! and when a node dies, its keys redistribute over the survivors while
//! everything else stays put. That last property is what makes failover
//! cheap: only the dead node's sessions re-home.

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The rendezvous weight of `key` on `node`. Pure and stable: the same
/// pair scores the same forever, on every host.
pub fn score(key: u64, node: u64) -> u64 {
    mix(key ^ mix(node))
}

/// The highest-scoring node for `key` among `nodes` (indices into the
/// membership list). `None` when `nodes` is empty. Ties break toward the
/// lower index, deterministically.
pub fn pick(key: u64, nodes: impl IntoIterator<Item = usize>) -> Option<usize> {
    nodes
        .into_iter()
        .map(|n| (score(key, n as u64), std::cmp::Reverse(n)))
        .max()
        .map(|(_, std::cmp::Reverse(n))| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_deterministic_and_total() {
        for key in 0..64u64 {
            let a = pick(key, 0..4).expect("nonempty");
            let b = pick(key, 0..4).expect("nonempty");
            assert_eq!(a, b);
            assert!(a < 4);
        }
        assert_eq!(pick(7, std::iter::empty()), None);
    }

    #[test]
    fn every_node_owns_some_keys() {
        let n = 5;
        let mut owned = vec![0u32; n];
        for key in 0..2000u64 {
            owned[pick(mix(key), 0..n).expect("nonempty")] += 1;
        }
        for (node, &count) in owned.iter().enumerate() {
            // A fair hash gives each node ~400 of 2000; a badly skewed
            // mix would starve one entirely.
            assert!(count > 100, "node {node} owns only {count} of 2000 keys");
        }
    }

    #[test]
    fn adding_a_node_moves_about_one_in_n_keys_and_only_to_the_joiner() {
        let keys: Vec<u64> = (0..4000u64).map(mix).collect();
        let mut moved = 0u32;
        for &key in &keys {
            let before = pick(key, 0..4).expect("nonempty");
            let after = pick(key, 0..5).expect("nonempty");
            if before != after {
                // The defining rendezvous property: growth never shuffles
                // keys between existing nodes.
                assert_eq!(after, 4, "key {key:#x} moved to a survivor");
                moved += 1;
            }
        }
        let frac = f64::from(moved) / keys.len() as f64;
        assert!(
            (0.13..0.28).contains(&frac),
            "expected ~1/5 of keys to move, got {frac:.3}"
        );
    }

    #[test]
    fn removing_a_node_rehomes_only_its_keys() {
        for key in (0..500u64).map(mix) {
            let before = pick(key, 0..4).expect("nonempty");
            let after = pick(key, (0..4).filter(|&n| n != 2)).expect("nonempty");
            if before != 2 {
                assert_eq!(before, after, "key {key:#x} moved without cause");
            } else {
                assert_ne!(after, 2);
            }
        }
    }
}
