//! An owned in-process fleet: N store-enabled `copred_server`s plus a
//! [`Router`], packaged as a [`ReplayBackend`].
//!
//! This is the harness shape the conformance suite and `copred_fleet`
//! subcommands drive: replay a CPRDLOG through the router exactly like a
//! single node, or [`FleetBackend::kill_backend`] mid-stream and watch
//! the survivors pick the sessions up from replicated warm state.

use crate::router::Router;
use copred_replay::ReplayBackend;
use copred_service::protocol::{Request, Response};
use copred_service::{Server, ServerConfig};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp store roots across backends in one process.
static FLEET_SEQ: AtomicU64 = AtomicU64::new(0);

/// N in-process servers fronted by a router. Each backend gets a fresh
/// store root under the OS temp dir (removed on drop), so every fleet
/// starts cold and replication — not leftover disk state — explains any
/// warm start.
pub struct FleetBackend {
    servers: Vec<Option<Server>>,
    router: Router,
    root: PathBuf,
    label: String,
}

impl FleetBackend {
    /// Starts `n` store-enabled backends with single-node default
    /// geometry (so fleet answers are comparable to a default server)
    /// and a router over them.
    ///
    /// # Errors
    ///
    /// Store-root creation or server bind failures.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn start(n: usize) -> io::Result<FleetBackend> {
        Self::start_with(n, ServerConfig::default())
    }

    /// [`Self::start`] with an explicit base config; `addr` and
    /// `store_dir` are overridden per backend.
    ///
    /// # Errors
    ///
    /// Store-root creation or server bind failures.
    pub fn start_with(n: usize, base: ServerConfig) -> io::Result<FleetBackend> {
        assert!(n > 0, "a fleet needs at least one backend");
        let root = std::env::temp_dir().join(format!(
            "copred-fleet-{}-{}",
            std::process::id(),
            FLEET_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        let mut servers = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let dir = root.join(format!("node{i}"));
            std::fs::create_dir_all(&dir)?;
            let server = Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                store_dir: Some(dir.to_string_lossy().into_owned()),
                ..base.clone()
            })?;
            addrs.push(server.local_addr().to_string());
            servers.push(Some(server));
        }
        Ok(FleetBackend {
            servers,
            router: Router::new(&addrs),
            root,
            label: "fleet".to_string(),
        })
    }

    /// Renames the backend (useful for A/B reports).
    #[must_use]
    pub fn labeled(mut self, label: &str) -> FleetBackend {
        self.label = label.to_string();
        self
    }

    /// Backends in the fleet (dead ones included).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet has no backends (never true post-`start`).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Kills backend `i`: the server shuts down and the router is told
    /// it is dead, as a deployment's health checker would. Sessions
    /// homed there re-open on survivors from their replicated warm
    /// state, lazily, on their next op.
    pub fn kill_backend(&mut self, i: usize) {
        self.servers[i] = None;
        self.router.mark_dead(i);
    }

    /// The router fronting the fleet.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable router access (ledgers, manual calls).
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// Dissolves the backend into its router plus the servers keeping it
    /// answerable. For long-running fronts (`copred_fleet up`) that hand
    /// the router to connection threads: the caller must hold the
    /// returned servers alive, and the temp store root is left for the
    /// OS to reclaim rather than removed on drop.
    #[must_use]
    pub fn into_router(self) -> (Router, Vec<Option<Server>>) {
        let mut me = std::mem::ManuallyDrop::new(self);
        (
            std::mem::replace(&mut me.router, Router::placeholder()),
            std::mem::take(&mut me.servers),
        )
    }
}

impl ReplayBackend for FleetBackend {
    fn label(&self) -> &str {
        &self.label
    }

    fn call(&mut self, req: &Request) -> Result<Response, String> {
        self.router.call(req)
    }
}

impl Drop for FleetBackend {
    fn drop(&mut self) {
        // Servers release their store directories before the root goes.
        self.servers.clear();
        let _ = std::fs::remove_dir_all(&self.root);
    }
}
