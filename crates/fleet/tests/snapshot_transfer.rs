//! Snapshot shipping under hostile transfer, against a live
//! store-enabled server: truncation at every byte offset, CRC
//! corruption, version skew, and duplicate pushes. Every bad transfer
//! must come back as a structured `err bad_request` — never a panic,
//! never a dropped connection, never a session leak — and the receiver
//! must stay cold-startable afterward.

use copred_core::{ChtParams, Strategy};
use copred_service::protocol::{Request, Response, SchedMode};
use copred_service::{Server, ServerConfig, ServiceClient};
use copred_store::crc::crc32;
use copred_store::snapshot::{decode, encode};
use copred_store::TableImage;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Small table geometry so exhaustive byte-offset truncation stays
/// cheap: 64 entries × two 2-bit counters = 32 payload bytes + header.
fn tiny_params() -> ChtParams {
    ChtParams {
        bits: 6,
        counter_bits: 2,
        strategy: Strategy::new(1.0),
        update_fraction: 0.125,
    }
}

/// A deterministic non-trivial image to ship.
fn sample_image(salt: u64) -> TableImage {
    let mut image = TableImage::empty(tiny_params());
    for (i, cell) in image.cells.iter_mut().enumerate() {
        let v = salt.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        cell.0 = (v % 4) as u8;
        cell.1 = ((v >> 8) % 4) as u8;
    }
    image.u_state = salt | 1;
    image
}

struct Rig {
    _server: Server,
    client: ServiceClient,
}

static RIG_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-case fingerprints: the cold-start probe persists (empty) state on
/// close, so cases must not share a fingerprint or `snap_none`
/// assertions would see the previous case's probe.
static FP_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_fp() -> u64 {
    0xDEAD_0000_0000 + FP_SEQ.fetch_add(1, Ordering::Relaxed)
}

fn rig() -> Rig {
    let dir = std::env::temp_dir().join(format!(
        "copred-fleet-hostile-{}-{}",
        std::process::id(),
        RIG_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cht_params: tiny_params(),
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let client = ServiceClient::connect(server.local_addr()).expect("connect");
    Rig {
        _server: server,
        client,
    }
}

/// One server shared by the property tests (every case leaves it
/// stateless, which the cases themselves assert).
fn shared_rig() -> &'static Mutex<Rig> {
    static SHARED: OnceLock<Mutex<Rig>> = OnceLock::new();
    SHARED.get_or_init(|| Mutex::new(rig()))
}

fn push(rig: &mut Rig, fp: u64, version: u32, crc: u32, payload: Vec<u8>) -> Response {
    rig.client
        .call(&Request::SnapPush {
            fp,
            version,
            crc,
            payload,
        })
        .expect("transport stays up")
}

fn rejection_text(resp: &Response, context: &str) -> String {
    match resp {
        Response::Error(e) => e.to_string(),
        other => panic!("{context}: expected structured rejection, got {other:?}"),
    }
}

/// The receiver is cold-startable and leak-free: a fresh session opens,
/// closes, and the server counts zero open sessions.
fn assert_cold_startable(rig: &mut Rig, fp: u64) {
    let (id, _warm) = rig
        .client
        .open_with_fp("planar-2d", 2, SchedMode::Coord, 3, Some(fp))
        .expect("receiver must still open sessions");
    rig.client.close(id).expect("close");
    let kv = rig.client.stats(None).expect("stats");
    let open = kv
        .iter()
        .find(|(k, _)| k == "sessions_open")
        .expect("sessions_open stat");
    assert_eq!(open.1, "0", "session leak after hostile transfer");
}

#[test]
fn truncation_at_every_byte_offset_is_rejected_with_structure() {
    let mut rig = rig();
    let fp = 0xDEAD_0001;
    let payload = encode(&sample_image(11));
    for k in 0..payload.len() {
        let torn = payload[..k].to_vec();
        // Honest framing (declared length and CRC match the torn bytes):
        // the rejection must come from snapshot validation itself.
        let resp = push(&mut rig, fp, 1, crc32(&torn), torn);
        let text = rejection_text(&resp, &format!("truncated to {k} bytes"));
        assert!(
            text.contains("snapshot"),
            "truncation to {k} bytes: unstructured rejection '{text}'"
        );
    }
    // Nothing hostile stuck: the fingerprint is still absent.
    let resp = rig.client.call(&Request::SnapGet { fp }).expect("snap_get");
    assert_eq!(resp, Response::SnapNone { fp });
    assert_cold_startable(&mut rig, fp);
}

#[test]
fn declared_length_mismatch_is_rejected_at_the_frame() {
    let mut rig = rig();
    let payload = encode(&sample_image(12));
    // The wire text declares the full length but carries a torn hex
    // body; the codec must refuse before any validation runs.
    let full = Request::SnapPush {
        fp: 0xDEAD_0002,
        version: 1,
        crc: crc32(&payload),
        payload: payload.clone(),
    }
    .to_text();
    let (head, hex) = full.split_once('\n').expect("two-line encoding");
    let torn_text = format!("{head}\n{}\n", &hex.trim_end()[..hex.trim_end().len() / 2]);
    let err = Request::from_text(&torn_text).expect_err("torn payload must not parse");
    assert!(err.contains("payload"), "unhelpful parse error: {err}");
    assert_cold_startable(&mut rig, 0xDEAD_0002);
}

#[test]
fn duplicate_pushes_converge_and_offers_become_idempotent() {
    let mut rig = rig();
    let fp = 0xDEAD_0003;
    let image = sample_image(13);
    let payload = encode(&image);
    let crc = crc32(&payload);
    // First push installs fresh state.
    assert_eq!(
        push(&mut rig, fp, 1, crc, payload.clone()),
        Response::SnapApplied { fp, merged: false }
    );
    // The duplicate max-merges into an identical image.
    assert_eq!(
        push(&mut rig, fp, 1, crc, payload.clone()),
        Response::SnapApplied { fp, merged: true }
    );
    let Response::Snap {
        payload: stored, ..
    } = rig.client.call(&Request::SnapGet { fp }).expect("snap_get")
    else {
        panic!("state must exist after applied pushes");
    };
    assert_eq!(
        decode(&stored).expect("stored state decodes"),
        image,
        "duplicate push corrupted the stored image"
    );
    // An offer of bytes the receiver already holds is declined.
    let resp = rig
        .client
        .call(&Request::SnapOffer {
            fp,
            version: 1,
            crc,
            len: payload.len() as u64,
        })
        .expect("snap_offer");
    assert_eq!(resp, Response::SnapWant { fp, want: false });
    assert_cold_startable(&mut rig, fp);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn version_skew_is_rejected_not_guessed(version in 2u32..=u32::MAX, salt in 0u64..1000) {
        let mut rig = shared_rig().lock().expect("rig lock");
        let fp = fresh_fp();
        let payload = encode(&sample_image(salt));
        let crc = crc32(&payload);
        let resp = push(&mut rig, fp, version, crc, payload);
        let text = rejection_text(&resp, "version skew");
        prop_assert!(text.contains("version"), "rejection should mention version: {text}");
        let resp = rig.client.call(&Request::SnapGet { fp }).expect("snap_get");
        prop_assert_eq!(resp, Response::SnapNone { fp });
        assert_cold_startable(&mut rig, fp);
    }

    /// With the transfer CRC left matching the *original* bytes, any
    /// flip anywhere in the snapshot is caught at the transfer layer.
    #[test]
    fn any_flip_under_a_stale_transfer_crc_is_rejected(
        salt in 0u64..1000,
        byte in 0usize..84,
        bit in 0u8..8,
    ) {
        let mut rig = shared_rig().lock().expect("rig lock");
        let fp = fresh_fp();
        let original = encode(&sample_image(salt));
        assert_eq!(original.len(), 84, "tiny snapshot geometry changed");
        let mut payload = original.clone();
        payload[byte] ^= 1 << bit;
        let resp = push(&mut rig, fp, 1, crc32(&original), payload);
        let text = rejection_text(&resp, "stale-CRC flip");
        prop_assert!(text.contains("CRC"), "rejection should mention the CRC: {text}");
        let resp = rig.client.call(&Request::SnapGet { fp }).expect("snap_get");
        prop_assert_eq!(resp, Response::SnapNone { fp });
        assert_cold_startable(&mut rig, fp);
    }

    /// Even a flip *re-signed* with a fresh transfer CRC is rejected by
    /// the snapshot's own validation — magic, version, parameter
    /// ranges, geometry, internal payload CRC — everywhere except the
    /// `u_state` field (bytes 36..44), whose integrity is exactly what
    /// the transfer CRC exists to protect.
    #[test]
    fn resigned_flips_outside_u_state_are_still_rejected(
        salt in 0u64..1000,
        byte in 0usize..76,
        bit in 0u8..8,
    ) {
        // Skip over the u_state field: 0..76 maps onto 0..36 ∪ 44..84.
        let byte = if byte >= 36 { byte + 8 } else { byte };
        let mut rig = shared_rig().lock().expect("rig lock");
        let fp = fresh_fp();
        let mut payload = encode(&sample_image(salt));
        payload[byte] ^= 1 << bit;
        let crc = crc32(&payload);
        let resp = push(&mut rig, fp, 1, crc, payload);
        let text = rejection_text(&resp, "re-signed flip");
        prop_assert!(
            text.contains("snapshot"),
            "unstructured rejection: {text}"
        );
        let resp = rig.client.call(&Request::SnapGet { fp }).expect("snap_get");
        prop_assert_eq!(resp, Response::SnapNone { fp });
        assert_cold_startable(&mut rig, fp);
    }
}
