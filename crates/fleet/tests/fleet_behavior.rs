//! End-to-end fleet behavior: a fleet answers a workload exactly like a
//! single node, a session migrated mid-stream by a backend kill
//! continues bit-identically from replicated warm state, and a closing
//! session's gossip warms the whole fleet for the fingerprint's next
//! life.

use copred_fleet::FleetBackend;
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_replay::{
    normalize_response, run_ab, run_replay, InProcessBackend, LogMeta, LogRecord, ReplayBackend,
    ReplayLog, ReplayOptions,
};
use copred_service::protocol::{Request, Response, SchedMode};
use copred_trace::{MotionTrace, Stage, TraceCdq};

/// A deterministic synthetic motion; `salt` varies poses, CDQ centers,
/// and ground truth so distinct motions exercise distinct CHT entries
/// while repeated salts re-hit learned ones.
fn synthetic_motion(salt: u64) -> MotionTrace {
    let f = |k: u64| ((salt.wrapping_mul(31).wrapping_add(k) % 200) as f64 - 100.0) / 100.0;
    let poses: Vec<Config> = (0..3)
        .map(|p| Config::new(vec![f(p * 2), f(p * 2 + 1)]))
        .collect();
    let mut cdqs = Vec::new();
    for pose_idx in 0..poses.len() as u32 {
        for link_idx in 0..2u32 {
            let k = u64::from(pose_idx * 2 + link_idx);
            cdqs.push(TraceCdq {
                pose_idx,
                link_idx,
                center: Vec3::new(f(k + 10), f(k + 20), 0.0),
                colliding: (salt + k).is_multiple_of(3),
                obstacle_tests: 1 + (k % 4) as u32,
            });
        }
    }
    MotionTrace {
        stage: if salt.is_multiple_of(2) {
            Stage::Explore
        } else {
            Stage::Validate
        },
        poses,
        cdqs,
    }
}

fn batch(salts: std::ops::Range<u64>) -> Vec<MotionTrace> {
    salts.map(synthetic_motion).collect()
}

/// The op stream both migration arms drive: one fingerprinted session,
/// batches arranged so late batches revisit early salts (predictions by
/// then depend on learned warm state).
fn migration_ops(fp: u64) -> Vec<Request> {
    let mut ops = vec![Request::Open {
        robot: "planar-2d".to_string(),
        link_count: 2,
        mode: SchedMode::Coord,
        seed: 42,
        fp: Some(fp),
    }];
    for round in 0..6u64 {
        // Salts cycle with period 3, so rounds 3.. re-check motions whose
        // outcomes the CHT has already absorbed.
        let base = (round % 3) * 8;
        ops.push(Request::CheckMotion {
            session: 0,
            motions: batch(base..base + 8),
            trace: None,
        });
    }
    ops.push(Request::Close { session: 0 });
    ops
}

/// Drives `ops` against a fleet, rewriting the placeholder session token
/// to the one the open answered, killing `kill_after_op` (when set)
/// backends-of-the-session once that many ops completed. Returns the
/// normalized responses and the session's router ledger.
fn drive(
    fleet: &mut FleetBackend,
    ops: &[Request],
    kill_after_op: Option<usize>,
) -> (Vec<String>, copred_fleet::SessionLedger) {
    let mut live = 0u64;
    let mut responses = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if kill_after_op == Some(i) {
            let owner = fleet.router().node_of(live).expect("session routed");
            fleet.kill_backend(owner);
        }
        let mut op = op.clone();
        match &mut op {
            Request::CheckMotion { session, .. } | Request::Close { session } => *session = live,
            _ => {}
        }
        let resp = fleet.call(&op).expect("fleet answers");
        if let Response::Session { id, .. } = resp {
            live = id;
        }
        responses.push(normalize_response(&resp.to_text()));
    }
    let ledger = fleet
        .router()
        .ledger(live)
        .expect("ledger survives close")
        .clone();
    (responses, ledger)
}

#[test]
fn migrated_session_replays_bit_identically_to_unmigrated() {
    let fp = 0xFEE7_BEEF_0001;
    let ops = migration_ops(fp);

    let mut calm = FleetBackend::start(2).expect("start calm fleet");
    let (calm_responses, calm_ledger) = drive(&mut calm, &ops, None);

    // Kill the session's owner after op 4 (open + three check batches
    // absorbed into the replica): the remaining batches — including the
    // rounds that revisit learned salts — run on the survivor.
    let mut stormy = FleetBackend::start(2).expect("start stormy fleet");
    let (stormy_responses, stormy_ledger) = drive(&mut stormy, &ops, Some(4));

    assert_eq!(stormy_ledger.migrations, 1, "the kill must migrate");
    assert_eq!(
        calm_responses, stormy_responses,
        "migration changed the response stream"
    );
    assert_eq!(
        calm_ledger,
        copred_fleet::SessionLedger {
            migrations: stormy_ledger.migrations - 1,
            ..stormy_ledger.clone()
        },
        "migration changed the session ledger"
    );
    // The comparison only means something if the post-kill batches
    // actually consulted learned state: predictions must have elided
    // CDQs somewhere in the stream.
    assert!(
        calm_ledger.cdqs_issued < calm_ledger.cdqs_total,
        "workload never exercised the predictor ({} of {})",
        calm_ledger.cdqs_issued,
        calm_ledger.cdqs_total,
    );
}

#[test]
fn close_gossip_warms_survivors_for_the_next_session() {
    let fp = 0xFEE7_BEEF_0002;
    let mut fleet = FleetBackend::start(3).expect("start fleet");
    let open = Request::Open {
        robot: "planar-2d".to_string(),
        link_count: 2,
        mode: SchedMode::Coord,
        seed: 7,
        fp: Some(fp),
    };
    let Response::Session { id, warm } = fleet.call(&open).expect("open") else {
        panic!("want session");
    };
    assert!(!warm, "a fresh fleet has nothing to warm-start from");
    let check = Request::CheckMotion {
        session: id,
        motions: batch(0..6),
        trace: None,
    };
    assert!(matches!(
        fleet.call(&check).expect("check"),
        Response::Results { .. }
    ));
    let owner = fleet.router().node_of(id).expect("routed");
    assert_eq!(
        fleet.call(&Request::Close { session: id }).expect("close"),
        Response::Closed
    );

    // The owner takes its disk with it; only gossip can warm the next
    // session, which now rendezvous-homes on a survivor.
    fleet.kill_backend(owner);
    let Response::Session { warm, .. } = fleet.call(&open).expect("re-open") else {
        panic!("want session");
    };
    assert!(warm, "gossiped snapshot must warm the survivor");
}

#[test]
fn fleet_replays_a_log_identically_to_a_single_node() {
    // Recorded the usual way: synthesize requests, harvest responses
    // from a single default node, call that the recording.
    let mut requests: Vec<(u64, &'static str, Request)> = Vec::new();
    for token in 0..3u64 {
        requests.push((
            token,
            "open",
            Request::Open {
                robot: "planar-2d".to_string(),
                link_count: 2,
                mode: SchedMode::Coord,
                seed: 5 ^ token,
                fp: None,
            },
        ));
        for round in 0..3u64 {
            requests.push((
                token,
                "check_motion",
                Request::CheckMotion {
                    session: token,
                    motions: batch(token * 50 + round * 4..token * 50 + round * 4 + 4),
                    trace: None,
                },
            ));
        }
        requests.push((token, "close", Request::Close { session: token }));
    }
    let mut log = ReplayLog {
        meta: LogMeta {
            seed: 5,
            fingerprint: 0,
            robot: "planar-2d".to_string(),
            workload: "synthetic".to_string(),
            scale: format!("ops={}", requests.len()),
        },
        records: requests
            .into_iter()
            .enumerate()
            .map(|(i, (token, verb, req))| LogRecord {
                idx: i as u64,
                session: token,
                start_ns: i as u64 * 1_000,
                duration_ns: 0,
                verb: verb.to_string(),
                status: "ok".to_string(),
                tag: format!("trace{token}"),
                request: req.to_text(),
                response: String::new(),
            })
            .collect(),
        complete: true,
    };
    let harvest = run_replay(
        &log,
        &mut InProcessBackend::with_server_defaults(),
        &ReplayOptions {
            compare: false,
            ..ReplayOptions::default()
        },
    )
    .expect("harvest");
    assert_eq!(harvest.backend_errors, 0);
    for (rec, resp) in log.records.iter_mut().zip(&harvest.responses) {
        rec.response = resp.clone();
    }

    let mut single = InProcessBackend::with_server_defaults();
    let mut fleet = FleetBackend::start(2).expect("start fleet");
    let ab = run_ab(&log, &mut single, &mut fleet, &ReplayOptions::default()).expect("ab");
    assert!(
        ab.responses_identical(),
        "fleet diverged from single node at ops {:?}",
        ab.diverging_ops()
    );
    assert!(ab.a.is_identical() && ab.b.is_identical());
}

#[test]
fn router_answers_protocol_errors_and_global_stats_locally() {
    let mut fleet = FleetBackend::start(2).expect("start fleet");
    // Unknown and double-closed sessions are protocol errors, not fleet
    // failures.
    let resp = fleet
        .call(&Request::Close { session: 99 })
        .expect("call survives");
    assert!(matches!(resp, Response::Error(_)));
    let Response::Session { id, .. } = fleet
        .call(&Request::Open {
            robot: "planar-2d".to_string(),
            link_count: 2,
            mode: SchedMode::Naive,
            seed: 1,
            fp: None,
        })
        .expect("open")
    else {
        panic!("want session");
    };
    assert_eq!(
        fleet.call(&Request::Close { session: id }).expect("close"),
        Response::Closed
    );
    assert!(matches!(
        fleet.call(&Request::Close { session: id }).expect("call"),
        Response::Error(_)
    ));
    // Global stats come from the router's own mirror — no backend
    // fan-out, sessions_open reflects the router's routes.
    let Response::Stats(kv) = fleet
        .call(&Request::Stats { session: None })
        .expect("stats")
    else {
        panic!("want stats");
    };
    let get = |k: &str| {
        kv.iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing {k}"))
            .1
            .clone()
    };
    assert_eq!(get("sessions_open"), "0");
    assert_eq!(get("sessions_opened"), "1");
    assert_eq!(get("sessions_closed"), "1");
}
