//! Obstacle-density classes and calibration.
//!
//! The paper's random benchmarks bound obstacle size and count "such that,
//! on average, ~2.5%, ~10%, and ~25% robot poses are in collision" for low,
//! medium, and high density. [`calibrated_environment`] reproduces that
//! protocol: it scales obstacle extents until the measured colliding-pose
//! fraction hits the target.

use copred_collision::{check_pose, Environment};
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::Robot;
use rand::Rng;

/// Obstacle-density classes from the paper's methodology (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Density {
    /// ~2.5% of random poses collide.
    Low,
    /// ~10% of random poses collide.
    Medium,
    /// ~25% of random poses collide.
    High,
}

impl Density {
    /// Target colliding-pose fraction.
    pub fn target(&self) -> f64 {
        match self {
            Density::Low => 0.025,
            Density::Medium => 0.10,
            Density::High => 0.25,
        }
    }

    /// All classes, low to high.
    pub fn all() -> [Density; 3] {
        [Density::Low, Density::Medium, Density::High]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Density::Low => "low",
            Density::Medium => "medium",
            Density::High => "high",
        }
    }
}

/// Measures the fraction of uniformly random poses that collide.
pub fn colliding_pose_fraction<R: Rng + ?Sized>(
    robot: &Robot,
    env: &Environment,
    n_poses: usize,
    rng: &mut R,
) -> f64 {
    assert!(n_poses > 0, "need at least one probe pose");
    let mut hits = 0usize;
    for _ in 0..n_poses {
        let q = robot.sample_uniform(rng);
        if check_pose(robot, env, &q).0 {
            hits += 1;
        }
    }
    hits as f64 / n_poses as f64
}

/// Places `count` cuboid obstacles with extents scaled by `scale` uniformly
/// inside the robot's workspace (the paper: "random placement of 5 - 9
/// cuboid-shaped obstacles ... limited to the reach of the robot").
pub fn random_obstacles<R: Rng + ?Sized>(
    robot: &Robot,
    count: usize,
    scale: f64,
    rng: &mut R,
) -> Vec<Aabb> {
    let ws = robot.workspace();
    let ext = ws.extents();
    (0..count)
        .map(|_| {
            let half = Vec3::new(
                rng.gen_range(0.5..1.0) * scale * ext.x,
                rng.gen_range(0.5..1.0) * scale * ext.y,
                rng.gen_range(0.5..1.0) * scale * ext.z,
            );
            let center = Vec3::new(
                rng.gen_range(ws.min.x + half.x..ws.max.x - half.x),
                rng.gen_range(ws.min.y + half.y..ws.max.y - half.y),
                rng.gen_range(ws.min.z + half.z..ws.max.z - half.z),
            );
            Aabb::from_center_half_extents(center, half)
        })
        .collect()
}

/// Generates an environment whose measured colliding-pose fraction matches
/// the density target, by bisecting the obstacle size scale.
///
/// `probe_poses` controls calibration accuracy (the paper samples 1000 poses
/// per scene; 200-400 suffice for calibration).
pub fn calibrated_environment<R: Rng + ?Sized>(
    robot: &Robot,
    density: Density,
    probe_poses: usize,
    rng: &mut R,
) -> Environment {
    let target = density.target();
    let count = rng.gen_range(5..=9);
    // Freeze obstacle *shapes* (unit-scale extents and relative positions are
    // re-rolled per trial scale to keep placement feasible).
    let (mut lo, mut hi) = (0.005f64, 0.22f64);
    let mut best: Option<(f64, Environment)> = None;
    for _ in 0..9 {
        let scale = 0.5 * (lo + hi);
        let env = Environment::new(
            robot.workspace(),
            random_obstacles(robot, count, scale, rng),
        );
        let frac = colliding_pose_fraction(robot, &env, probe_poses, rng);
        let err = (frac - target).abs();
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            best = Some((err, env));
        }
        if frac < target {
            lo = scale;
        } else {
            hi = scale;
        }
    }
    best.expect("bisection ran at least once").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_kinematics::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_targets_match_paper() {
        assert_eq!(Density::Low.target(), 0.025);
        assert_eq!(Density::Medium.target(), 0.10);
        assert_eq!(Density::High.target(), 0.25);
        assert_eq!(Density::all().len(), 3);
        assert_eq!(Density::High.label(), "high");
    }

    #[test]
    fn random_obstacles_stay_in_workspace() {
        let robot: Robot = presets::jaco2().into();
        let ws = robot.workspace();
        let mut rng = StdRng::seed_from_u64(5);
        for o in random_obstacles(&robot, 9, 0.1, &mut rng) {
            assert!(ws.contains_aabb(&o), "obstacle {o:?} escapes workspace");
        }
    }

    #[test]
    fn fraction_is_zero_in_empty_env() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(colliding_pose_fraction(&robot, &env, 50, &mut rng), 0.0);
    }

    #[test]
    fn fraction_is_one_when_everything_is_obstacle() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(robot.workspace(), vec![robot.workspace()]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(colliding_pose_fraction(&robot, &env, 50, &mut rng), 1.0);
    }

    #[test]
    fn calibration_hits_targets_planar() {
        let robot: Robot = presets::planar_2d().into();
        let mut rng = StdRng::seed_from_u64(33);
        for d in Density::all() {
            let env = calibrated_environment(&robot, d, 300, &mut rng);
            let measured = colliding_pose_fraction(&robot, &env, 600, &mut rng);
            let target = d.target();
            assert!(
                (measured - target).abs() < target.max(0.02) * 0.9 + 0.02,
                "{}: measured {measured}, target {target}",
                d.label()
            );
            assert!((5..=9).contains(&env.obstacle_count()));
        }
    }

    #[test]
    fn calibration_hits_target_arm_medium() {
        let robot: Robot = presets::jaco2().into();
        let mut rng = StdRng::seed_from_u64(7);
        let env = calibrated_environment(&robot, Density::Medium, 150, &mut rng);
        let measured = colliding_pose_fraction(&robot, &env, 300, &mut rng);
        assert!(
            (0.03..0.25).contains(&measured),
            "medium-density arm scene measured {measured}"
        );
    }

    #[test]
    fn higher_density_classes_collide_more() {
        let robot: Robot = presets::planar_2d().into();
        let mut rng = StdRng::seed_from_u64(4);
        let lo = calibrated_environment(&robot, Density::Low, 300, &mut rng);
        let hi = calibrated_environment(&robot, Density::High, 300, &mut rng);
        let f_lo = colliding_pose_fraction(&robot, &lo, 500, &mut rng);
        let f_hi = colliding_pose_fraction(&robot, &hi, 500, &mut rng);
        assert!(f_hi > f_lo, "high {f_hi} !> low {f_lo}");
    }
}
