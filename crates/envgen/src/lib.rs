//! # copred-envgen
//!
//! Benchmark environment generation for the COORD reproduction: random
//! scenes with calibrated obstacle density (low/medium/high from the
//! paper's methodology), tabletop and narrow-passage scenarios, the B1–B6
//! benchmark suites of Fig. 1d, and the G1–G5 difficulty quintiles of
//! Fig. 7 / Fig. 15.
//!
//! ## Example
//!
//! ```
//! use copred_envgen::{random_scene, Density};
//! use copred_kinematics::{presets, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let scene = random_scene(&robot, Density::Medium, 100, 42);
//! assert_eq!(scene.poses.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ascii;
mod density;
mod difficulty;
mod scenes;
mod suites;

pub use ascii::ascii_scene;
pub use density::{calibrated_environment, colliding_pose_fraction, random_obstacles, Density};
pub use difficulty::{group_by_difficulty, group_label, group_means, GROUP_COUNT};
pub use scenes::{
    narrow_passage_environment, random_scene, sample_free_config, tabletop_environment, Scene,
};
pub use suites::{build_suite, suite_environment, suite_robot, MotionBenchmark, SuiteId};
