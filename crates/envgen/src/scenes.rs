//! Structured scenes: predictor-study scenes, tabletop scenarios, and
//! narrow passages.

use crate::density::{calibrated_environment, Density};
use copred_collision::Environment;
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::{Config, Robot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A predictor-study scene: one environment plus the random poses sampled in
/// it (the paper samples "1000 random robot poses ... in an environment").
#[derive(Debug, Clone)]
pub struct Scene {
    /// The obstacle scene.
    pub env: Environment,
    /// The sampled evaluation poses.
    pub poses: Vec<Config>,
}

/// Generates a calibrated random scene with `n_poses` sampled poses.
pub fn random_scene(robot: &Robot, density: Density, n_poses: usize, seed: u64) -> Scene {
    let mut rng = StdRng::seed_from_u64(seed);
    let env = calibrated_environment(robot, density, 250, &mut rng);
    let poses = (0..n_poses)
        .map(|_| robot.sample_uniform(&mut rng))
        .collect();
    Scene { env, poses }
}

/// A tabletop scenario in the style of the MPNet/GNNMP benchmarks: "a work
/// table with several objects randomly placed on the table and in the
/// surroundings."
pub fn tabletop_environment(robot: &Robot, n_objects: usize, seed: u64) -> Environment {
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = robot.workspace();
    let reach = ws.half_extents().x;
    let mut obstacles = Vec::with_capacity(n_objects + 1);
    // The table: a slab in front of the robot, slightly below the base.
    let table_top = -0.05;
    obstacles.push(Aabb::new(
        Vec3::new(0.25 * reach, -0.8 * reach, table_top - 0.04),
        Vec3::new(0.95 * reach, 0.8 * reach, table_top),
    ));
    // Objects on the table and in the surroundings.
    for i in 0..n_objects {
        let half = Vec3::new(
            rng.gen_range(0.03..0.11) * reach,
            rng.gen_range(0.03..0.11) * reach,
            rng.gen_range(0.06..0.26) * reach,
        );
        let center = if i % 4 != 3 {
            // On the table.
            Vec3::new(
                rng.gen_range(0.3 * reach..0.9 * reach),
                rng.gen_range(-0.7 * reach..0.7 * reach),
                table_top + half.z,
            )
        } else {
            // Floating in the surroundings (shelves, fixtures).
            Vec3::new(
                rng.gen_range(-0.6 * reach..0.9 * reach),
                rng.gen_range(-0.8 * reach..0.8 * reach),
                rng.gen_range(0.2 * reach..0.8 * reach),
            )
        };
        obstacles.push(Aabb::from_center_half_extents(center, half));
    }
    Environment::new(ws, obstacles)
}

/// A narrow-passage scene: two blocks separated by a gap of width
/// `gap_fraction` of the workspace — the challenging scenario class where
/// the paper finds collision prediction helps most.
pub fn narrow_passage_environment(robot: &Robot, gap_fraction: f64, seed: u64) -> Environment {
    assert!(
        gap_fraction > 0.0 && gap_fraction < 1.0,
        "gap fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = robot.workspace();
    let ext = ws.extents();
    // The dividing wall sits at a random x position in the middle band.
    let wall_x = ws.min.x + ext.x * rng.gen_range(0.4..0.6);
    let wall_half_t = 0.04 * ext.x;
    let gap_half = 0.5 * gap_fraction * ext.y;
    let gap_center = ws.min.y + ext.y * rng.gen_range(0.3..0.7);
    let obstacles = vec![
        // Lower wall segment.
        Aabb::new(
            Vec3::new(wall_x - wall_half_t, ws.min.y, ws.min.z),
            Vec3::new(wall_x + wall_half_t, gap_center - gap_half, ws.max.z),
        ),
        // Upper wall segment.
        Aabb::new(
            Vec3::new(wall_x - wall_half_t, gap_center + gap_half, ws.min.z),
            Vec3::new(wall_x + wall_half_t, ws.max.y, ws.max.z),
        ),
    ];
    Environment::new(ws, obstacles)
}

/// Samples a collision-free configuration by rejection (up to `attempts`
/// tries); returns `None` when the scene is too cluttered to find one.
pub fn sample_free_config<R: Rng + ?Sized>(
    robot: &Robot,
    env: &Environment,
    attempts: usize,
    rng: &mut R,
) -> Option<Config> {
    for _ in 0..attempts {
        let q = robot.sample_uniform(rng);
        if !copred_collision::check_pose(robot, env, &q).0 {
            return Some(q);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::check_pose;
    use copred_kinematics::presets;

    #[test]
    fn random_scene_has_requested_poses() {
        let robot: Robot = presets::planar_2d().into();
        let s = random_scene(&robot, Density::Medium, 100, 3);
        assert_eq!(s.poses.len(), 100);
        assert!(s.env.obstacle_count() >= 5);
    }

    #[test]
    fn random_scene_is_reproducible() {
        let robot: Robot = presets::planar_2d().into();
        let a = random_scene(&robot, Density::Low, 10, 42);
        let b = random_scene(&robot, Density::Low, 10, 42);
        assert_eq!(a.poses, b.poses);
        assert_eq!(a.env.obstacles(), b.env.obstacles());
    }

    #[test]
    fn tabletop_has_table_and_objects() {
        let robot: Robot = presets::baxter_arm().into();
        let env = tabletop_environment(&robot, 6, 1);
        assert_eq!(env.obstacle_count(), 7);
        // The table slab is wide and flat.
        let table = &env.obstacles()[0];
        let e = table.extents();
        assert!(e.x > e.z && e.y > e.z);
    }

    #[test]
    fn tabletop_blocks_some_poses_but_not_all() {
        let robot: Robot = presets::kuka_iiwa().into();
        let env = tabletop_environment(&robot, 8, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = 0;
        let n = 200;
        for _ in 0..n {
            if check_pose(&robot, &env, &robot.sample_uniform(&mut rng)).0 {
                hits += 1;
            }
        }
        assert!(hits > 0, "tabletop never collides");
        assert!(hits < n, "tabletop always collides");
    }

    #[test]
    fn narrow_passage_leaves_a_gap() {
        let robot: Robot = presets::planar_2d().into();
        let env = narrow_passage_environment(&robot, 0.15, 5);
        assert_eq!(env.obstacle_count(), 2);
        // The two wall segments do not overlap (there is a gap).
        let [a, b] = [&env.obstacles()[0], &env.obstacles()[1]];
        assert!(!a.intersects(b));
    }

    #[test]
    fn free_config_sampling_avoids_obstacles() {
        let robot: Robot = presets::planar_2d().into();
        let env = narrow_passage_environment(&robot, 0.2, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let q = sample_free_config(&robot, &env, 200, &mut rng).expect("free config exists");
        assert!(!check_pose(&robot, &env, &q).0);
    }

    #[test]
    fn fully_blocked_scene_returns_none() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(robot.workspace(), vec![robot.workspace()]);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_free_config(&robot, &env, 50, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "gap fraction")]
    fn invalid_gap_rejected() {
        let robot: Robot = presets::planar_2d().into();
        let _ = narrow_passage_environment(&robot, 1.5, 0);
    }
}
