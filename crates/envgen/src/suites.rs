//! Benchmark suites B1–B6 (paper Fig. 1d) and motion workloads.

use crate::density::Density;
use crate::scenes::{narrow_passage_environment, sample_free_config, tabletop_environment};
use copred_collision::Environment;
use copred_kinematics::{presets, Motion, Robot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A motion-checking benchmark: a robot, a scene, and the motions whose
/// collision checks are measured.
#[derive(Debug, Clone)]
pub struct MotionBenchmark {
    /// Benchmark label (suite + scenario index).
    pub name: String,
    /// The robot.
    pub robot: Robot,
    /// The scene.
    pub env: Environment,
    /// Motions to check.
    pub motions: Vec<Motion>,
}

/// The six benchmark suites compared in Fig. 1d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteId {
    /// Jaco2 arm, low-clutter random scenes.
    B1,
    /// Jaco2 arm, medium-clutter random scenes.
    B2,
    /// Jaco2 arm, high-clutter random scenes.
    B3,
    /// KUKA iiwa, tabletop scenes.
    B4,
    /// Baxter arm, tabletop scenes.
    B5,
    /// 2D path planning, narrow passages.
    B6,
}

impl SuiteId {
    /// All suites in order.
    pub fn all() -> [SuiteId; 6] {
        [
            SuiteId::B1,
            SuiteId::B2,
            SuiteId::B3,
            SuiteId::B4,
            SuiteId::B5,
            SuiteId::B6,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SuiteId::B1 => "B1",
            SuiteId::B2 => "B2",
            SuiteId::B3 => "B3",
            SuiteId::B4 => "B4",
            SuiteId::B5 => "B5",
            SuiteId::B6 => "B6",
        }
    }
}

/// Builds the environment of one suite scenario.
pub fn suite_environment(id: SuiteId, robot: &Robot, scenario: usize, seed: u64) -> Environment {
    let scene_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(scenario as u64);
    let mut rng = StdRng::seed_from_u64(scene_seed);
    match id {
        SuiteId::B1 => crate::density::calibrated_environment(robot, Density::Low, 200, &mut rng),
        SuiteId::B2 => {
            crate::density::calibrated_environment(robot, Density::Medium, 200, &mut rng)
        }
        SuiteId::B3 => crate::density::calibrated_environment(robot, Density::High, 200, &mut rng),
        SuiteId::B4 | SuiteId::B5 => tabletop_environment(robot, 6 + scenario % 4, scene_seed),
        SuiteId::B6 => {
            narrow_passage_environment(robot, 0.08 + 0.04 * (scenario % 3) as f64, scene_seed)
        }
    }
}

/// The robot each suite evaluates.
pub fn suite_robot(id: SuiteId) -> Robot {
    match id {
        SuiteId::B1 | SuiteId::B2 | SuiteId::B3 => presets::jaco2().into(),
        SuiteId::B4 => presets::kuka_iiwa().into(),
        SuiteId::B5 => presets::baxter_arm().into(),
        SuiteId::B6 => presets::planar_2d().into(),
    }
}

/// Generates one suite: `scenarios` scenes, each with `motions_per_scenario`
/// random start→goal motions. Start poses are rejection-sampled to be
/// collision-free (a planner never asks about a motion from an invalid
/// pose); goals are unconstrained, so a realistic mix of colliding and free
/// motions results.
pub fn build_suite(
    id: SuiteId,
    scenarios: usize,
    motions_per_scenario: usize,
    seed: u64,
) -> Vec<MotionBenchmark> {
    let robot = suite_robot(id);
    (0..scenarios)
        .map(|s| {
            let env = suite_environment(id, &robot, s, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ (s as u64) << 17);
            let mut motions = Vec::with_capacity(motions_per_scenario);
            while motions.len() < motions_per_scenario {
                let from = sample_free_config(&robot, &env, 400, &mut rng)
                    .unwrap_or_else(|| robot.sample_uniform(&mut rng));
                let to = robot.sample_uniform(&mut rng);
                motions.push(Motion::new(from, to));
            }
            MotionBenchmark {
                name: format!("{}-{}", id.label(), s),
                robot: robot.clone(),
                env,
                motions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::{check_motion_scheduled, Schedule};

    #[test]
    fn all_suites_build() {
        for id in SuiteId::all() {
            let benches = build_suite(id, 1, 3, 7);
            assert_eq!(benches.len(), 1);
            assert_eq!(benches[0].motions.len(), 3, "{}", id.label());
            assert!(benches[0].name.starts_with(id.label()));
        }
    }

    #[test]
    fn suites_are_reproducible() {
        let a = build_suite(SuiteId::B6, 2, 2, 11);
        let b = build_suite(SuiteId::B6, 2, 2, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.env.obstacles(), y.env.obstacles());
            assert_eq!(x.motions.len(), y.motions.len());
            for (m, n) in x.motions.iter().zip(&y.motions) {
                assert_eq!(m.from, n.from);
                assert_eq!(m.to, n.to);
            }
        }
    }

    #[test]
    fn suite_robots_match_spec() {
        assert_eq!(suite_robot(SuiteId::B1).name(), "jaco2");
        assert_eq!(suite_robot(SuiteId::B4).name(), "kuka-iiwa");
        assert_eq!(suite_robot(SuiteId::B5).name(), "baxter");
        assert_eq!(suite_robot(SuiteId::B6).name(), "planar-2d");
    }

    #[test]
    fn cluttered_suites_produce_colliding_motions() {
        // B3 (high clutter) should yield a healthy fraction of colliding
        // motions — the paper measures 52%-93% across planner workloads.
        let benches = build_suite(SuiteId::B3, 1, 10, 3);
        let b = &benches[0];
        let mut colliding = 0;
        for m in &b.motions {
            let poses = m.discretize(10);
            if check_motion_scheduled(&b.robot, &b.env, &poses, Schedule::Oracle).colliding {
                colliding += 1;
            }
        }
        assert!(
            colliding >= 2,
            "only {colliding}/10 colliding motions in B3"
        );
    }
}
