//! Difficulty grouping G1–G5.
//!
//! The paper approximates a planning query's difficulty by "the number of
//! CDQs performed during a motion planning query" and divides benchmarks
//! "into five equal-size groups, G1-G5, where the difficulty level increases
//! from G1 to G5" (Fig. 7, Fig. 15).

/// The five difficulty quintiles.
pub const GROUP_COUNT: usize = 5;

/// Labels `G1`..`G5`.
pub fn group_label(g: usize) -> String {
    assert!(g < GROUP_COUNT, "group index out of range");
    format!("G{}", g + 1)
}

/// Splits items into [`GROUP_COUNT`] equal-size groups ordered by a
/// difficulty key (ascending). Returns a vector of groups, each holding the
/// original item indices. Sizes differ by at most one when the item count is
/// not divisible by five.
///
/// # Examples
///
/// ```
/// use copred_envgen::group_by_difficulty;
///
/// let costs = vec![50u64, 10, 40, 20, 30];
/// let groups = group_by_difficulty(&costs, |c| *c);
/// assert_eq!(groups[0], vec![1]); // the cheapest query is G1
/// assert_eq!(groups[4], vec![0]); // the most expensive is G5
/// ```
pub fn group_by_difficulty<T, F: Fn(&T) -> u64>(items: &[T], key: F) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (key(&items[i]), i));
    let n = items.len();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); GROUP_COUNT];
    for (rank, idx) in order.into_iter().enumerate() {
        // Distribute ranks evenly: group g covers ranks [g*n/5, (g+1)*n/5).
        let g = (rank * GROUP_COUNT).checked_div(n).unwrap_or(0);
        groups[g.min(GROUP_COUNT - 1)].push(idx);
    }
    groups
}

/// Mean of `key` over the item indices of each group (NaN-free: empty groups
/// report 0).
pub fn group_means<T, F: Fn(&T) -> f64>(items: &[T], groups: &[Vec<usize>], key: F) -> Vec<f64> {
    groups
        .iter()
        .map(|g| {
            if g.is_empty() {
                0.0
            } else {
                g.iter().map(|&i| key(&items[i])).sum::<f64>() / g.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_equal_size_when_divisible() {
        let costs: Vec<u64> = (0..25).collect();
        let groups = group_by_difficulty(&costs, |c| *c);
        for g in &groups {
            assert_eq!(g.len(), 5);
        }
        // Ascending difficulty across groups.
        assert!(groups[0].iter().all(|&i| costs[i] < 5));
        assert!(groups[4].iter().all(|&i| costs[i] >= 20));
    }

    #[test]
    fn uneven_counts_differ_by_at_most_one() {
        let costs: Vec<u64> = (0..23).collect();
        let groups = group_by_difficulty(&costs, |c| *c);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn ties_are_stable() {
        let costs = vec![5u64; 10];
        let groups = group_by_difficulty(&costs, |c| *c);
        // With all-equal keys the split is by original index order.
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[4], vec![8, 9]);
    }

    #[test]
    fn group_means_computed_per_group() {
        let costs = vec![1.0f64, 2.0, 3.0, 4.0, 5.0];
        let groups = group_by_difficulty(&costs, |c| *c as u64);
        let means = group_means(&costs, &groups, |c| *c);
        assert_eq!(means, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn empty_input_gives_empty_groups() {
        let costs: Vec<u64> = vec![];
        let groups = group_by_difficulty(&costs, |c| *c);
        assert!(groups.iter().all(Vec::is_empty));
        let means = group_means(&costs, &groups, |c| *c as f64);
        assert_eq!(means, vec![0.0; 5]);
    }

    #[test]
    fn labels() {
        assert_eq!(group_label(0), "G1");
        assert_eq!(group_label(4), "G5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range() {
        let _ = group_label(5);
    }
}
