//! ASCII rendering of planar scenes — a zero-dependency way to *see* 2D
//! environments, paths, and predictor behaviour in terminals, examples, and
//! failing-test output.

use copred_collision::Environment;
use copred_geometry::Vec3;

/// Renders the z = 0 slice of an environment as an ASCII grid.
///
/// Obstacles render as `#`, free space as `·`, and each point of `path`
/// as `*` (drawn over obstacles as `X` to make collisions visible). The
/// first and last path points render as `S` and `G`.
///
/// # Panics
///
/// Panics when `cols` or `rows` is zero.
///
/// # Examples
///
/// ```
/// use copred_envgen::ascii_scene;
/// use copred_collision::Environment;
/// use copred_geometry::{Aabb, Vec3};
///
/// let ws = Aabb::new(Vec3::new(-1.0, -1.0, -0.1), Vec3::new(1.0, 1.0, 0.1));
/// let env = Environment::new(ws, vec![Aabb::new(
///     Vec3::new(-0.1, -1.0, -0.1), Vec3::new(0.1, 0.0, 0.1),
/// )]);
/// let art = ascii_scene(&env, &[], 20, 10);
/// assert!(art.contains('#'));
/// ```
pub fn ascii_scene(env: &Environment, path: &[Vec3], cols: usize, rows: usize) -> String {
    assert!(cols > 0 && rows > 0, "grid must have positive dimensions");
    let ws = env.workspace();
    let (min, ext) = (ws.min, ws.extents());
    let cell = |r: usize, c: usize| -> Vec3 {
        Vec3::new(
            min.x + ext.x * (c as f64 + 0.5) / cols as f64,
            // Row 0 is the top of the picture (max y).
            min.y + ext.y * ((rows - 1 - r) as f64 + 0.5) / rows as f64,
            0.0,
        )
    };
    let mut grid: Vec<Vec<char>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| {
                    if env.point_collides(cell(r, c)) {
                        '#'
                    } else {
                        '·'
                    }
                })
                .collect()
        })
        .collect();
    let to_rc = |p: Vec3| -> Option<(usize, usize)> {
        let cx = ((p.x - min.x) / ext.x * cols as f64).floor();
        let cy = ((p.y - min.y) / ext.y * rows as f64).floor();
        if cx < 0.0 || cy < 0.0 || cx >= cols as f64 || cy >= rows as f64 {
            return None;
        }
        Some((rows - 1 - cy as usize, cx as usize))
    };
    for (i, &p) in path.iter().enumerate() {
        if let Some((r, c)) = to_rc(p) {
            let mark = if i == 0 {
                'S'
            } else if i == path.len() - 1 {
                'G'
            } else if grid[r][c] == '#' {
                'X'
            } else {
                '*'
            };
            grid[r][c] = mark;
        }
    }
    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::Aabb;

    fn env_with_wall() -> Environment {
        let ws = Aabb::new(Vec3::new(-1.0, -1.0, -0.1), Vec3::new(1.0, 1.0, 0.1));
        Environment::new(
            ws,
            vec![Aabb::new(
                Vec3::new(-0.1, -1.0, -0.1),
                Vec3::new(0.1, 0.2, 0.1),
            )],
        )
    }

    #[test]
    fn renders_requested_dimensions() {
        let art = ascii_scene(&env_with_wall(), &[], 24, 12);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(lines.iter().all(|l| l.chars().count() == 24));
    }

    #[test]
    fn wall_appears_in_the_middle_columns() {
        let art = ascii_scene(&env_with_wall(), &[], 20, 10);
        let lines: Vec<&str> = art.lines().collect();
        // Bottom row crosses the wall; top row does not (wall ends at y=0.2).
        assert!(lines.last().unwrap().contains('#'));
        assert!(!lines.first().unwrap().contains('#'));
        // Wall occupies the central columns only.
        let bottom: Vec<char> = lines.last().unwrap().chars().collect();
        assert_eq!(bottom[0], '·');
        assert_eq!(bottom[19], '·');
        assert_eq!(bottom[10], '#');
    }

    #[test]
    fn path_markers_and_collision_highlight() {
        let path = vec![
            Vec3::new(-0.8, 0.8, 0.0),
            Vec3::new(0.0, -0.5, 0.0), // inside the wall -> X
            Vec3::new(0.8, 0.8, 0.0),
        ];
        let art = ascii_scene(&env_with_wall(), &path, 20, 10);
        assert!(art.contains('S'));
        assert!(art.contains('G'));
        assert!(
            art.contains('X'),
            "colliding waypoint not highlighted:\n{art}"
        );
    }

    #[test]
    fn out_of_workspace_points_are_skipped() {
        let path = vec![Vec3::new(5.0, 5.0, 0.0)];
        let art = ascii_scene(&env_with_wall(), &path, 10, 5);
        assert!(!art.contains('S'));
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_grid_rejected() {
        let _ = ascii_scene(&env_with_wall(), &[], 0, 5);
    }
}
