//! Property-based tests for environment generation.

use copred_envgen::{
    group_by_difficulty, group_means, narrow_passage_environment, random_obstacles,
    tabletop_environment, Density, GROUP_COUNT,
};
use copred_kinematics::{presets, Robot};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grouping_is_a_partition(costs in prop::collection::vec(0u64..10_000, 0..120)) {
        let groups = group_by_difficulty(&costs, |c| *c);
        prop_assert_eq!(groups.len(), GROUP_COUNT);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
        // Group sizes are balanced within one.
        if !costs.is_empty() {
            let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn grouping_is_ordered_by_difficulty(costs in prop::collection::vec(0u64..10_000, 10..100)) {
        let groups = group_by_difficulty(&costs, |c| *c);
        // Every element of group g is <= every element of group g+1.
        for w in groups.windows(2) {
            let max_lo = w[0].iter().map(|&i| costs[i]).max();
            let min_hi = w[1].iter().map(|&i| costs[i]).min();
            if let (Some(a), Some(b)) = (max_lo, min_hi) {
                prop_assert!(a <= b);
            }
        }
        let means = group_means(&costs, &groups, |c| *c as f64);
        for w in means.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }

    #[test]
    fn obstacles_fit_workspace(seed in any::<u64>(), count in 1usize..12, scale in 0.01..0.2f64) {
        let robot: Robot = presets::jaco2().into();
        let ws = robot.workspace();
        let mut rng = StdRng::seed_from_u64(seed);
        for o in random_obstacles(&robot, count, scale, &mut rng) {
            prop_assert!(ws.contains_aabb(&o));
        }
    }

    #[test]
    fn narrow_passage_gap_scales(seed in any::<u64>(), gap in 0.05..0.5f64) {
        let robot: Robot = presets::planar_2d().into();
        let env = narrow_passage_environment(&robot, gap, seed);
        let [a, b] = [&env.obstacles()[0], &env.obstacles()[1]];
        // The opening between the two wall segments matches the requested
        // fraction of the workspace's y extent.
        let opening = b.min.y - a.max.y;
        let expect = gap * robot.workspace().extents().y;
        prop_assert!((opening - expect).abs() < 1e-9);
    }

    #[test]
    fn tabletop_is_deterministic(seed in any::<u64>(), n in 1usize..10) {
        let robot: Robot = presets::kuka_iiwa().into();
        let a = tabletop_environment(&robot, n, seed);
        let b = tabletop_environment(&robot, n, seed);
        prop_assert_eq!(a.obstacles(), b.obstacles());
        prop_assert_eq!(a.obstacle_count(), n + 1); // table + objects
    }
}

#[test]
fn density_targets_are_ordered() {
    let t: Vec<f64> = Density::all().iter().map(Density::target).collect();
    assert!(t[0] < t[1] && t[1] < t[2]);
}
