//! Counting-level trace replay: the reference schedules and the software
//! COORD predictor (Algorithm 1 on top of CSP), applied to recorded CDQ
//! traces.

use copred_collision::{run_schedule, Schedule};
use copred_core::hash::CollisionHash;
use copred_core::{Cht, ChtParams, CoordHash, HashInput};
use copred_kinematics::{csp_order, Config};
use copred_trace::QueryTrace;

/// Total CDQs a query trace executes under a reference schedule.
pub fn replay_schedule(trace: &QueryTrace, schedule: Schedule) -> u64 {
    trace
        .motions
        .iter()
        .map(|m| run_schedule(&m.to_cdq_infos(), m.poses.len(), schedule).cdqs_executed as u64)
        .sum()
}

/// Total CDQs a query trace executes under COORD prediction (Algorithm 1 on
/// CSP pose order; history persists across the query's motions and starts
/// cold).
pub fn replay_coord(trace: &QueryTrace, hash: &CoordHash, cht_params: ChtParams, seed: u64) -> u64 {
    let mut cht = Cht::new(cht_params, seed);
    let dummy = Config::zeros(0);
    let code = |center| {
        hash.code(&HashInput {
            config: &dummy,
            center,
        })
    };
    let mut executed = 0u64;
    for m in &trace.motions {
        let n_poses = m.poses.len().max(
            m.cdqs
                .iter()
                .map(|c| c.pose_idx as usize + 1)
                .max()
                .unwrap_or(0),
        );
        // Pose-major blocks in CSP order, links in order within a pose.
        let mut starts = vec![0usize; n_poses + 1];
        for c in &m.cdqs {
            starts[c.pose_idx as usize + 1] += 1;
        }
        for i in 0..n_poses {
            starts[i + 1] += starts[i];
        }
        let mut queue = Vec::new();
        let mut hit = false;
        'outer: for p in csp_order(n_poses, Schedule::DEFAULT_CSP_STEP) {
            for i in starts[p]..starts[p + 1] {
                let cdq = &m.cdqs[i];
                if cht.predict(code(cdq.center)) {
                    executed += 1;
                    cht.observe(code(cdq.center), cdq.colliding);
                    if cdq.colliding {
                        hit = true;
                        break 'outer;
                    }
                } else {
                    queue.push(i);
                }
            }
        }
        if !hit {
            for i in queue {
                let cdq = &m.cdqs[i];
                executed += 1;
                cht.observe(code(cdq.center), cdq.colliding);
                if cdq.colliding {
                    break;
                }
            }
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion, Robot};
    use copred_planners::{MotionRecord, PlanLog, Stage};

    fn trace_with_wall() -> (Robot, QueryTrace) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(0.2, -1.0, -0.1),
                Vec3::new(0.6, 1.0, 0.1),
            )],
        );
        // Several *nearby* parallel crossings of the same wall (within one
        // COORD bin): the predictor should get warm after the first.
        let records: Vec<MotionRecord> = (0..8)
            .map(|i| {
                let y = -0.02 + 0.01 * i as f64;
                let poses = Motion::new(Config::new(vec![-0.8, y]), Config::new(vec![0.8, y]))
                    .discretize(33);
                MotionRecord {
                    poses,
                    stage: Stage::Explore,
                    colliding: true,
                }
            })
            .collect();
        let trace = QueryTrace::from_log(&robot, &env, &PlanLog { records });
        (robot, trace)
    }

    #[test]
    fn coord_replay_between_csp_and_oracle() {
        let (robot, trace) = trace_with_wall();
        let naive = replay_schedule(&trace, Schedule::Naive);
        let csp = replay_schedule(&trace, Schedule::csp_default());
        let oracle = replay_schedule(&trace, Schedule::Oracle);
        let coord = replay_coord(
            &trace,
            &CoordHash::paper_default(&robot),
            ChtParams::paper_2d(),
            1,
        );
        assert!(csp <= naive);
        assert!(coord < csp, "coord {coord} !< csp {csp}");
        assert!(oracle <= coord);
    }

    #[test]
    fn coord_replay_is_deterministic() {
        let (robot, trace) = trace_with_wall();
        let h = CoordHash::paper_default(&robot);
        let a = replay_coord(&trace, &h, ChtParams::paper_2d(), 7);
        let b = replay_coord(&trace, &h, ChtParams::paper_2d(), 7);
        assert_eq!(a, b);
    }
}
