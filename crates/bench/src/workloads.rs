//! Workload construction shared by the figure harnesses: planner-generated
//! CDQ traces for the paper's algorithm-robot combinations, and scale
//! control.

use copred_collision::Environment;
use copred_envgen::{narrow_passage_environment, sample_free_config, tabletop_environment};
use copred_kinematics::{presets, Robot};
use copred_planners::{BitStar, GnnmpEmulator, MpnetEmulator, PlanContext, Planner};
use copred_trace::QueryTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload sizes for the figure harnesses. `Scale::from_env` reads
/// `COPRED_SCALE` (`quick` default, `full` for paper-scale runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Scenes per predictor study.
    pub scenes: usize,
    /// Random poses sampled per scene.
    pub poses_per_scene: usize,
    /// Planning queries per algorithm-robot combination.
    pub queries: usize,
    /// Scenarios per B-suite.
    pub suite_scenarios: usize,
    /// Motions per suite scenario.
    pub suite_motions: usize,
    /// Monte-Carlo trials for the statistical model.
    pub mc_trials: usize,
}

impl Scale {
    /// The fast default (minutes on a laptop).
    pub fn quick() -> Self {
        Scale {
            scenes: 12,
            poses_per_scene: 1000,
            queries: 15,
            suite_scenarios: 3,
            suite_motions: 40,
            mc_trials: 3000,
        }
    }

    /// Paper-scale sizes (the paper: 400 scenes × 1000 poses; 1000 queries).
    pub fn full() -> Self {
        Scale {
            scenes: 100,
            poses_per_scene: 1000,
            queries: 60,
            suite_scenarios: 8,
            suite_motions: 120,
            mc_trials: 10_000,
        }
    }

    /// Reads `COPRED_SCALE` from the environment: `quick` (also the
    /// default when unset) or `full`.
    ///
    /// # Errors
    ///
    /// An unknown value is an error listing the valid names — a typo like
    /// `COPRED_SCALE=ful` must not silently run the quick suite.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("COPRED_SCALE") {
            Err(std::env::VarError::NotPresent) => Ok(Scale::quick()),
            Err(e) => Err(format!("COPRED_SCALE is not valid unicode: {e}")),
            Ok(v) => match v.as_str() {
                "quick" => Ok(Scale::quick()),
                "full" => Ok(Scale::full()),
                other => Err(format!(
                    "unknown COPRED_SCALE '{other}' (valid: quick, full)"
                )),
            },
        }
    }

    /// [`Scale::from_env`] for binaries: prints the error and exits 2.
    pub fn from_env_or_exit() -> Self {
        Scale::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }
}

/// Motion planning algorithms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// MPNet (ref. \[41\]; emulated neural sampler).
    Mpnet,
    /// GNNMP (ref. \[50\]; emulated graph sampler).
    Gnnmp,
    /// BIT* (ref. \[14\]).
    BitStar,
}

impl Algo {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Mpnet => "MPNet",
            Algo::Gnnmp => "GNNMP",
            Algo::BitStar => "BIT*",
        }
    }
}

/// Robots evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RobotKind {
    /// Rethink Baxter 7-DOF arm.
    Baxter,
    /// KUKA iiwa 7-DOF arm.
    Kuka,
    /// Kinova Jaco2 7-DOF arm.
    Jaco2,
    /// 2D path planning (planar disc).
    Planar2d,
}

impl RobotKind {
    /// Instantiates the robot model.
    pub fn robot(&self) -> Robot {
        match self {
            RobotKind::Baxter => presets::baxter_arm().into(),
            RobotKind::Kuka => presets::kuka_iiwa().into(),
            RobotKind::Jaco2 => presets::jaco2().into(),
            RobotKind::Planar2d => presets::planar_2d().into(),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            RobotKind::Baxter => "Baxter",
            RobotKind::Kuka => "KUKA",
            RobotKind::Jaco2 => "Jaco2",
            RobotKind::Planar2d => "2D",
        }
    }

    /// Planner discretization step for this robot's C-space.
    pub fn step(&self) -> f64 {
        match self {
            RobotKind::Planar2d => 0.05,
            _ => 0.18,
        }
    }
}

/// An algorithm-robot combination (a Fig. 15 panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combo {
    /// The planner.
    pub algo: Algo,
    /// The robot.
    pub robot: RobotKind,
}

impl Combo {
    /// The six combinations of Fig. 15.
    pub fn paper_six() -> [Combo; 6] {
        [
            Combo {
                algo: Algo::Mpnet,
                robot: RobotKind::Baxter,
            },
            Combo {
                algo: Algo::Mpnet,
                robot: RobotKind::Planar2d,
            },
            Combo {
                algo: Algo::Gnnmp,
                robot: RobotKind::Kuka,
            },
            Combo {
                algo: Algo::Gnnmp,
                robot: RobotKind::Planar2d,
            },
            Combo {
                algo: Algo::BitStar,
                robot: RobotKind::Kuka,
            },
            Combo {
                algo: Algo::BitStar,
                robot: RobotKind::Planar2d,
            },
        ]
    }

    /// `"MPNet-Baxter"`-style label.
    pub fn label(&self) -> String {
        format!("{}-{}", self.algo.label(), self.robot.label())
    }

    fn planner(&self) -> Box<dyn Planner> {
        let planar = self.robot == RobotKind::Planar2d;
        match self.algo {
            Algo::Mpnet => Box::new(MpnetEmulator::default()),
            Algo::Gnnmp => Box::new(GnnmpEmulator {
                n_samples: 90,
                ..GnnmpEmulator::default()
            }),
            Algo::BitStar => Box::new(BitStar {
                batch_size: 64,
                max_batches: 8,
                // 7-D uniform configurations are far apart; the connection
                // radius must scale with the C-space diameter.
                radius: if planar { 0.6 } else { 3.2 },
                ..BitStar::default()
            }),
        }
    }
}

/// The scenario environment for query `q` of a combo: tabletop scenes for
/// arms (the MPNet/GNNMP benchmarks), alternating narrow-passage and
/// tabletop-style scenes for 2D planning.
pub fn combo_environment(combo: &Combo, robot: &Robot, q: usize, seed: u64) -> Environment {
    let scene_seed = seed ^ ((q as u64 + 1) * 0x9E37_79B9);
    match combo.robot {
        RobotKind::Planar2d => {
            if q.is_multiple_of(2) {
                narrow_passage_environment(robot, 0.10 + 0.05 * ((q / 2) % 3) as f64, scene_seed)
            } else {
                copred_envgen::calibrated_environment(
                    robot,
                    copred_envgen::Density::Medium,
                    200,
                    &mut StdRng::seed_from_u64(scene_seed),
                )
            }
        }
        _ => tabletop_environment(robot, 14 + q % 6, scene_seed),
    }
}

/// Runs `scale.queries` planning queries for a combo and returns the
/// recorded CDQ traces (one per query). Queries with empty logs (blocked
/// endpoints) are skipped.
pub fn planner_traces(combo: &Combo, scale: &Scale, seed: u64) -> Vec<QueryTrace> {
    planner_traces_with_scenes(combo, scale, seed)
        .into_iter()
        .map(|(t, _env)| t)
        .collect()
}

/// [`planner_traces`] plus each trace's scene. Skipped queries make the
/// trace index diverge from the scene index `q`, so persistence callers
/// that fingerprint environments need the surviving pairs, not a parallel
/// `combo_environment` loop.
pub fn planner_traces_with_scenes(
    combo: &Combo,
    scale: &Scale,
    seed: u64,
) -> Vec<(QueryTrace, Environment)> {
    let robot = combo.robot.robot();
    let planner = combo.planner();
    let mut traces = Vec::with_capacity(scale.queries);
    let mut q = 0usize;
    let mut attempts = 0usize;
    while traces.len() < scale.queries && attempts < scale.queries * 4 {
        attempts += 1;
        let env = combo_environment(combo, &robot, q, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ ((q as u64) << 20) ^ 0xC0FFEE);
        let Some(start) = sample_free_config(&robot, &env, 300, &mut rng) else {
            q += 1;
            continue;
        };
        // A planning query is only interesting when the direct motion is
        // blocked (the paper's benchmarks are nontrivial queries); resample
        // the goal until the straight line collides.
        let mut goal = None;
        for _ in 0..40 {
            let Some(g) = sample_free_config(&robot, &env, 300, &mut rng) else {
                continue;
            };
            let direct = copred_kinematics::Motion::new(start.clone(), g.clone())
                .discretize_by_step(combo.robot.step());
            if copred_collision::motion_collides(&robot, &env, &direct) {
                goal = Some(g);
                break;
            }
        }
        let Some(goal) = goal else {
            q += 1;
            continue;
        };
        let mut ctx = PlanContext::new(&robot, &env, combo.robot.step());
        let _ = planner.plan(&mut ctx, &start, &goal, &mut rng);
        let log = ctx.into_log();
        q += 1;
        if log.is_empty() {
            continue;
        }
        traces.push((QueryTrace::from_log(&robot, &env, &log), env));
    }
    traces
}

/// Caches planner traces per combo so figure harnesses that share a
/// workload (Fig. 15/17/18) generate it once.
#[derive(Debug)]
pub struct Workloads {
    /// Workload sizes.
    pub scale: Scale,
    seed: u64,
    cache: std::collections::HashMap<Combo, Vec<QueryTrace>>,
}

impl Workloads {
    /// Creates an empty cache.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Workloads {
            scale,
            seed,
            cache: std::collections::HashMap::new(),
        }
    }

    /// The traces for a combo, generating them on first use.
    pub fn traces(&mut self, combo: Combo) -> &[QueryTrace] {
        let (scale, seed) = (self.scale, self.seed);
        self.cache
            .entry(combo)
            .or_insert_with(|| planner_traces(&combo, &scale, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults_quick() {
        // (Environment variable not set in tests.)
        assert_eq!(Scale::from_env(), Ok(Scale::quick()));
        assert!(Scale::full().queries > Scale::quick().queries);
    }

    #[test]
    fn paper_six_labels() {
        let labels: Vec<String> = Combo::paper_six().iter().map(Combo::label).collect();
        assert_eq!(labels[0], "MPNet-Baxter");
        assert_eq!(labels[5], "BIT*-2D");
    }

    #[test]
    fn planar_traces_have_workload_signature() {
        let combo = Combo {
            algo: Algo::Mpnet,
            robot: RobotKind::Planar2d,
        };
        let scale = Scale {
            queries: 3,
            ..Scale::quick()
        };
        let traces = planner_traces(&combo, &scale, 5);
        assert!(!traces.is_empty());
        for t in &traces {
            assert!(t.total_cdqs() > 0);
        }
    }

    #[test]
    fn combo_environments_are_deterministic() {
        let combo = Combo {
            algo: Algo::Gnnmp,
            robot: RobotKind::Planar2d,
        };
        let robot = combo.robot.robot();
        let a = combo_environment(&combo, &robot, 2, 9);
        let b = combo_environment(&combo, &robot, 2, 9);
        assert_eq!(a.obstacles(), b.obstacles());
    }
}
