//! One module per group of figures; every public function returns the
//! formatted table(s) it would print.

mod accelfigs;
mod limit;
mod prediction;
mod scope;
mod software;

pub use accelfigs::{fig15, fig16, fig17, fig18, tab_overheads};
pub use limit::{fig1d, fig6, fig7, oracle_perfwatt};
pub use prediction::{ablation_adaptive_s, fig13, fig14, fig9};
pub use scope::{sec7_dadup, sec7_spheres};
pub use software::{cpu_section, fig11};
