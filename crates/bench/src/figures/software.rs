//! Software execution figures: Fig. 11 (GPU parallelism sweep) and the
//! §III-E CPU measurement.

use crate::table::{num, pct, render_table};
use crate::workloads::{Algo, Combo, RobotKind, Workloads};
use copred_core::ChtParams;
use copred_swexec::{gpu_sweep, run_cpu, CpuExecConfig, GpuModelParams};
use copred_trace::MotionTrace;

/// Collects the motion traces of a combo's queries into one flat workload.
fn flat_motions(work: &mut Workloads, combo: Combo) -> Vec<MotionTrace> {
    work.traces(combo)
        .iter()
        .flat_map(|t| t.motions.iter().cloned())
        .collect()
}

/// §III-E: multi-threaded CPU collision detection with a shared CHT
/// (paper: −25.3% CDQs, −13.8% runtime on 64 threads).
pub fn cpu_section(work: &mut Workloads) -> String {
    let combo = Combo {
        algo: Algo::Mpnet,
        robot: RobotKind::Baxter,
    };
    let robot = combo.robot.robot();
    // Re-execute the recorded motions live against a representative scene.
    // Real benchmark scenes decompose obstacle meshes into many primitive
    // boxes, making the narrow phase dominate FK (the paper: collision
    // detection is >90% of runtime); subdivide each cuboid accordingly.
    let coarse = crate::workloads::combo_environment(&combo, &robot, 0, 5);
    let mut primitives: Vec<copred_geometry::Aabb> = coarse.obstacles().to_vec();
    for _ in 0..2 {
        primitives = primitives
            .iter()
            .flat_map(|o| {
                let c = o.center();
                o.corners().into_iter().map(move |corner| {
                    copred_geometry::Aabb::from_points([c, corner]).expect("two points")
                })
            })
            .collect();
    }
    let env = copred_collision::Environment::new(*coarse.workspace(), primitives);
    let motions: Vec<Vec<copred_kinematics::Config>> = work
        .traces(combo)
        .iter()
        .flat_map(|t| t.motions.iter().map(|m| m.poses.clone()))
        .collect();
    let threads = std::thread::available_parallelism().map_or(8, |n| n.get());
    let base = run_cpu(
        &robot,
        &env,
        &motions,
        &CpuExecConfig {
            n_threads: threads,
            with_prediction: false,
            ..Default::default()
        },
    );
    let pred = run_cpu(
        &robot,
        &env,
        &motions,
        &CpuExecConfig {
            n_threads: threads,
            with_prediction: true,
            cht_params: ChtParams::paper_arm(),
            ..Default::default()
        },
    );
    let cdq_red = 1.0 - pred.cdqs_executed as f64 / base.cdqs_executed.max(1) as f64;
    let time_red = 1.0 - pred.wall_time.as_secs_f64() / base.wall_time.as_secs_f64().max(1e-12);
    render_table(
        &format!("§III-E — CPU software collision detection ({threads} threads, shared CHT)"),
        &["metric", "baseline", "prediction", "reduction"],
        &[
            vec![
                "CDQs".into(),
                base.cdqs_executed.to_string(),
                pred.cdqs_executed.to_string(),
                pct(cdq_red),
            ],
            vec![
                "runtime (ms)".into(),
                num(base.wall_time.as_secs_f64() * 1e3, 2),
                num(pred.wall_time.as_secs_f64() * 1e3, 2),
                pct(time_red),
            ],
        ],
    )
}

/// Fig. 11: GPU parallelism sweep — CDQs and runtime with and without
/// prediction, normalized to the 64-thread baseline.
pub fn fig11(work: &mut Workloads) -> String {
    let combo = Combo {
        algo: Algo::Mpnet,
        robot: RobotKind::Baxter,
    };
    let motions = flat_motions(work, combo);
    let rows_data = gpu_sweep(
        &motions,
        &[64, 128, 256, 512, 1024, 2048, 4096],
        &GpuModelParams::default(),
        ChtParams::paper_arm(),
        3,
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                num(r.cdqs_base, 3),
                num(r.cdqs_pred, 3),
                num(r.time_base, 3),
                num(r.time_pred, 3),
            ]
        })
        .collect();
    render_table(
        "Fig. 11 — GPU parallelism sweep (normalized to 64-thread baseline)",
        &[
            "threads",
            "#CDQ base",
            "#CDQ pred",
            "time base",
            "time pred",
        ],
        &rows,
    )
}
