//! Limit-study figures: Fig. 1d, Fig. 6, Fig. 7, and the §III-A oracle
//! performance/watt study.

use crate::table::{pct, ratio, render_table};
use crate::workloads::{Algo, Combo, RobotKind, Scale, Workloads};
use copred_accel::{perf_report, AccelConfig, AccelSim, AreaModel, EnergyModel};
use copred_collision::{run_schedule, Schedule};
use copred_core::CoordHash;
use copred_envgen::SuiteId;
use copred_planners::Stage;
use copred_trace::QueryTrace;

/// Fig. 1d: CDQ computation for Naive / CSP / COORD / Oracle across the
/// B1–B6 benchmark suites (motion-planning problems run with the MPNet
/// emulator on each suite's scenes), normalized to Naive.
pub fn fig1d(scale: &Scale) -> String {
    use copred_envgen::{sample_free_config, suite_environment, suite_robot};
    use copred_planners::{MpnetEmulator, PlanContext, Planner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rows = Vec::new();
    for id in SuiteId::all() {
        let robot = suite_robot(id);
        let step = if matches!(robot, copred_kinematics::Robot::Planar(_)) {
            0.05
        } else {
            0.18
        };
        let cht = match robot {
            copred_kinematics::Robot::Planar(_) => copred_core::ChtParams::paper_2d(),
            _ => copred_core::ChtParams::paper_arm(),
        };
        let hash = CoordHash::paper_default(&robot);
        let (mut naive, mut csp, mut coord, mut oracle) = (0u64, 0u64, 0u64, 0u64);
        let queries_per_scene = (scale.queries / 3).max(2);
        for s in 0..scale.suite_scenarios {
            let env = suite_environment(id, &robot, s, 42);
            let mut rng = StdRng::seed_from_u64(42 ^ ((s as u64) << 13));
            for _ in 0..queries_per_scene {
                let (Some(start), Some(goal)) = (
                    sample_free_config(&robot, &env, 300, &mut rng),
                    sample_free_config(&robot, &env, 300, &mut rng),
                ) else {
                    continue;
                };
                let mut ctx = PlanContext::new(&robot, &env, step);
                let _ = MpnetEmulator::default().plan(&mut ctx, &start, &goal, &mut rng);
                let trace = copred_trace::QueryTrace::from_log(&robot, &env, &ctx.into_log());
                naive += crate::replay::replay_schedule(&trace, Schedule::Naive);
                csp += crate::replay::replay_schedule(&trace, Schedule::csp_default());
                oracle += crate::replay::replay_schedule(&trace, Schedule::Oracle);
                coord += crate::replay::replay_coord(&trace, &hash, cht, 1);
            }
        }
        let n = naive.max(1) as f64;
        rows.push(vec![
            id.label().to_string(),
            "1.000".to_string(),
            format!("{:.3}", csp as f64 / n),
            format!("{:.3}", coord as f64 / n),
            format!("{:.3}", oracle as f64 / n),
            pct(1.0 - coord as f64 / csp.max(1) as f64),
        ]);
    }
    render_table(
        "Fig. 1d — CDQ computation, normalized to Naive (last column: COORD reduction vs CSP)",
        &["suite", "Naive", "CSP", "COORD", "Oracle", "COORD vs CSP"],
        &rows,
    )
}

/// Replays every motion of `traces` under `schedule`, split by stage.
fn replay_by_stage(traces: &[QueryTrace], schedule: Schedule) -> (u64, u64) {
    let (mut s1, mut s2) = (0u64, 0u64);
    for t in traces {
        for m in &t.motions {
            let out = run_schedule(&m.to_cdq_infos(), m.poses.len(), schedule);
            match m.stage {
                Stage::Explore => s1 += out.cdqs_executed as u64,
                Stage::Validate => s2 += out.cdqs_executed as u64,
            }
        }
    }
    (s1, s2)
}

/// Fig. 6: limit study — Naive / CSP / Oracle CDQ counts per planner stage
/// for three algorithm-robot combinations.
pub fn fig6(work: &mut Workloads) -> String {
    let combos = [
        Combo {
            algo: Algo::Mpnet,
            robot: RobotKind::Baxter,
        },
        Combo {
            algo: Algo::Gnnmp,
            robot: RobotKind::Kuka,
        },
        Combo {
            algo: Algo::BitStar,
            robot: RobotKind::Kuka,
        },
    ];
    let mut rows = Vec::new();
    for combo in combos {
        let traces = work.traces(combo).to_vec();
        let (n1, n2) = replay_by_stage(&traces, Schedule::Naive);
        let (c1, c2) = replay_by_stage(&traces, Schedule::csp_default());
        let (o1, o2) = replay_by_stage(&traces, Schedule::Oracle);
        let total_naive = (n1 + n2).max(1) as f64;
        let colliding: f64 = traces
            .iter()
            .map(QueryTrace::colliding_fraction)
            .sum::<f64>()
            / traces.len().max(1) as f64;
        rows.push(vec![
            combo.label(),
            format!(
                "{:.3}/{:.3}",
                n1 as f64 / total_naive,
                n2 as f64 / total_naive
            ),
            format!(
                "{:.3}/{:.3}",
                c1 as f64 / total_naive,
                c2 as f64 / total_naive
            ),
            format!(
                "{:.3}/{:.3}",
                o1 as f64 / total_naive,
                o2 as f64 / total_naive
            ),
            pct(1.0 - (o1 + o2) as f64 / (c1 + c2).max(1) as f64),
            pct(if c1 > 0 {
                1.0 - o1 as f64 / c1 as f64
            } else {
                0.0
            }),
            pct(if c2 > 0 {
                1.0 - o2 as f64 / c2 as f64
            } else {
                0.0
            }),
            pct(colliding),
        ]);
    }
    render_table(
        "Fig. 6 — limit study (S1/S2 CDQs normalized to Naive total; Oracle reduction vs CSP)",
        &[
            "combo",
            "Naive S1/S2",
            "CSP S1/S2",
            "Oracle S1/S2",
            "Oracle vs CSP",
            "S1 red.",
            "S2 red.",
            "% motions colliding",
        ],
        &rows,
    )
}

/// Fig. 7: Oracle vs CSP across difficulty groups G1–G5 for GNNMP-KUKA.
pub fn fig7(work: &mut Workloads) -> String {
    let combo = Combo {
        algo: Algo::Gnnmp,
        robot: RobotKind::Kuka,
    };
    let traces = work.traces(combo).to_vec();
    // Difficulty proxy: CDQs executed under CSP for the whole query.
    let csp_costs: Vec<u64> = traces
        .iter()
        .map(|t| {
            t.motions
                .iter()
                .map(|m| {
                    run_schedule(&m.to_cdq_infos(), m.poses.len(), Schedule::csp_default())
                        .cdqs_executed as u64
                })
                .sum()
        })
        .collect();
    let oracle_costs: Vec<u64> = traces
        .iter()
        .map(|t| {
            t.motions
                .iter()
                .map(|m| {
                    run_schedule(&m.to_cdq_infos(), m.poses.len(), Schedule::Oracle).cdqs_executed
                        as u64
                })
                .sum()
        })
        .collect();
    let groups = copred_envgen::group_by_difficulty(&csp_costs, |c| *c);
    let g1_csp: u64 = groups[0].iter().map(|&i| csp_costs[i]).sum::<u64>().max(1);
    let g1_n = groups[0].len().max(1) as u64;
    let mut rows = Vec::new();
    for (g, idxs) in groups.iter().enumerate() {
        let csp: u64 = idxs.iter().map(|&i| csp_costs[i]).sum();
        let oracle: u64 = idxs.iter().map(|&i| oracle_costs[i]).sum();
        let norm = |v: u64| {
            // Normalize to the mean G1 CSP cost, as in the paper's plots.
            v as f64 / idxs.len().max(1) as f64 / (g1_csp as f64 / g1_n as f64)
        };
        rows.push(vec![
            copred_envgen::group_label(g),
            format!("{:.3}", norm(csp)),
            format!("{:.3}", norm(oracle)),
            pct(if csp > 0 {
                1.0 - oracle as f64 / csp as f64
            } else {
                0.0
            }),
        ]);
    }
    render_table(
        "Fig. 7 — GNNMP-KUKA difficulty groups (normalized to G1 CSP)",
        &["group", "CSP", "Oracle", "Oracle reduction"],
        &rows,
    )
}

/// §III-A: Oracle predictor performance/watt on the accelerator (paper:
/// 1.11×–1.44× across algorithms for 7-DOF arms).
pub fn oracle_perfwatt(work: &mut Workloads) -> String {
    let combos = [
        Combo {
            algo: Algo::Mpnet,
            robot: RobotKind::Baxter,
        },
        Combo {
            algo: Algo::Gnnmp,
            robot: RobotKind::Kuka,
        },
        Combo {
            algo: Algo::BitStar,
            robot: RobotKind::Kuka,
        },
    ];
    let em = EnergyModel::default();
    let am = AreaModel::default();
    let mut rows = Vec::new();
    for combo in combos {
        let traces = work.traces(combo).to_vec();
        let robot = combo.robot.robot();
        let mut base = AccelSim::new(AccelConfig::baseline(7), CoordHash::paper_default(&robot));
        let mut oracle = AccelSim::new(AccelConfig::oracle(7), CoordHash::paper_default(&robot));
        let mut rb = copred_accel::AccelRunResult::default();
        let mut ro = copred_accel::AccelRunResult::default();
        for t in &traces {
            base.reset_query();
            oracle.reset_query();
            let b = base.run_query(&t.motions);
            let o = oracle.run_query(&t.motions);
            rb.motions += b.motions;
            rb.colliding_motions += b.colliding_motions;
            rb.total_cycles += b.total_cycles;
            rb.events.merge(&b.events);
            ro.motions += o.motions;
            ro.colliding_motions += o.colliding_motions;
            ro.total_cycles += o.total_cycles;
            ro.events.merge(&o.events);
        }
        let pb = perf_report(&base, &rb, &em, &am);
        let po = perf_report(&oracle, &ro, &em, &am);
        rows.push(vec![
            combo.label(),
            ratio(po.perf_per_watt / pb.perf_per_watt),
            pct(1.0 - ro.cdqs_executed() as f64 / rb.cdqs_executed().max(1) as f64),
            ratio(pb.mean_latency_cycles / po.mean_latency_cycles.max(1.0)),
        ]);
    }
    render_table(
        "§III-A — Oracle predictor on the accelerator (7 CDUs)",
        &["combo", "perf/watt vs CSP", "CDQ reduction", "speedup"],
        &rows,
    )
}
