//! §VII scope studies: sphere-based CDUs and the Dadu-P octree-voxel
//! accelerator.

use crate::table::{pct, render_table};
use crate::workloads::{Scale, Workloads};
use copred_accel::{precompute_motion, DadupConfig, DadupMode, DadupSim, SphereSim};
use copred_core::ChtParams;
use copred_kinematics::{presets, Config, Robot};
use copred_planners::{PlanContext, Prm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §VII-1: sphere-environment CDQ reduction with link-level prediction
/// (paper: −23.4% for Jaco2 + MPNet).
pub fn sec7_spheres(work: &mut Workloads) -> String {
    // The sphere study re-executes MPNet-Jaco2-style motions live (sphere
    // CDQs are not part of the OBB traces).
    let combo = crate::workloads::Combo {
        algo: crate::workloads::Algo::Mpnet,
        robot: crate::workloads::RobotKind::Jaco2,
    };
    let robot = combo.robot.robot();
    let env = crate::workloads::combo_environment(&combo, &robot, 0, 31);
    let motions: Vec<Vec<Config>> = work
        .traces(combo)
        .iter()
        .flat_map(|t| t.motions.iter().map(|m| m.poses.clone()))
        .collect();
    let mut base = SphereSim::new(&robot, ChtParams::paper_arm(), false, 3);
    let mut copu = SphereSim::new(&robot, ChtParams::paper_arm(), true, 3);
    let rb = base.run_query(&robot, &env, &motions);
    let rc = copu.run_query(&robot, &env, &motions);
    render_table(
        "§VII-1 — sphere-based representation (Jaco2, MPNet workload)",
        &["config", "sphere CDQs", "reduction"],
        &[
            vec![
                "CSP baseline".into(),
                rb.sphere_cdqs.to_string(),
                "-".into(),
            ],
            vec![
                "CSP + COPU".into(),
                rc.sphere_cdqs.to_string(),
                pct(1.0 - rc.sphere_cdqs as f64 / rb.sphere_cdqs.max(1) as f64),
            ],
        ],
    )
}

/// §VII-2: Dadu-P octree-voxel accelerator with voxel-coordinate hashing
/// (paper, colliding motions vs naive: CSP −74.3%, CSP+COPU −81.2%,
/// oracle limit −99%).
pub fn sec7_dadup(scale: &Scale) -> String {
    let robot: Robot = presets::planar_2d().into();
    let env = copred_envgen::calibrated_environment(
        &robot,
        copred_envgen::Density::Medium,
        200,
        &mut StdRng::seed_from_u64(99),
    );
    // The fixed motion set: a PRM roadmap's edges (Dadu-P's precomputed
    // short motions).
    let mut ctx = PlanContext::new(&robot, &env, 0.05);
    let mut rng = StdRng::seed_from_u64(7);
    let prm = Prm {
        n_samples: scale.suite_motions.max(40),
        k_neighbors: 6,
    };
    let roadmap = prm.build_roadmap(&mut ctx, &[], &mut rng);
    let cfg = DadupConfig::default();
    let motions: Vec<_> = roadmap
        .roadmap_motions()
        .iter()
        .map(|m| precompute_motion(&robot, &m.discretize(cfg.sweep_samples), &cfg))
        .collect();
    // Include some long random motions so a healthy share collide.
    let extra: Vec<_> = (0..scale.suite_motions)
        .map(|_| {
            let m = copred_kinematics::Motion::new(
                robot.sample_uniform(&mut rng),
                robot.sample_uniform(&mut rng),
            );
            precompute_motion(&robot, &m.discretize(cfg.sweep_samples), &cfg)
        })
        .collect();
    let all: Vec<_> = motions.into_iter().chain(extra).collect();

    let run = |mode| {
        let mut sim = DadupSim::new(&env, DadupConfig::default());
        sim.run_workload(&all, mode).1
    };
    let naive = run(DadupMode::Naive).max(1);
    let csp = run(DadupMode::Csp);
    let copu = run(DadupMode::CspCopu);
    let oracle = run(DadupMode::Oracle);
    render_table(
        "§VII-2 — Dadu-P octree-voxel accelerator (CDQs on colliding motions vs naive)",
        &["schedule", "CDQs", "reduction vs naive", "paper"],
        &[
            vec!["naive".into(), naive.to_string(), "-".into(), "-".into()],
            vec![
                "CSP".into(),
                csp.to_string(),
                pct(1.0 - csp as f64 / naive as f64),
                "74.3%".into(),
            ],
            vec![
                "CSP+COPU".into(),
                copu.to_string(),
                pct(1.0 - copu as f64 / naive as f64),
                "81.2%".into(),
            ],
            vec![
                "oracle".into(),
                oracle.to_string(),
                pct(1.0 - oracle as f64 / naive as f64),
                "99%".into(),
            ],
        ],
    )
}
