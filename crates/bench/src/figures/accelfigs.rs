//! Accelerator figures: Fig. 15 (CDQ reduction per difficulty group),
//! Fig. 16 (perf/mm², perf/watt, latency), Fig. 17 (queue size), Fig. 18
//! (strategy / update-frequency sensitivity), and the §VI-B1 overhead table.

use crate::table::{num, pct, ratio, render_table};
use crate::workloads::{Combo, RobotKind, Workloads};
use copred_accel::{
    mpaccel_overheads, perf_report, AccelConfig, AccelRunResult, AccelSim, AreaModel, EnergyModel,
};
use copred_core::{ChtParams, CoordHash, Strategy};
use copred_trace::QueryTrace;

/// The per-robot CHT of the Fig. 15 setup: 4096×8 for arms, 1024×8 for 2D,
/// S = 1, U = 0.125.
fn fig15_cht(robot: RobotKind) -> ChtParams {
    match robot {
        RobotKind::Planar2d => ChtParams::paper_2d(),
        _ => ChtParams::paper_arm(),
    }
}

/// The §VI-B2 performance CHT: 4096×1 (arms) / 1024×1 (2D), S = 0, U = 0.
fn perf_cht(robot: RobotKind) -> ChtParams {
    let bits = match robot {
        RobotKind::Planar2d => 10,
        _ => 12,
    };
    ChtParams {
        bits,
        counter_bits: 1,
        strategy: Strategy::most_aggressive(),
        update_fraction: 0.0,
    }
}

/// Runs a simulator over per-query traces, resetting history per query,
/// returning per-query CDQ counts and the aggregate.
fn run_per_query(sim: &mut AccelSim, traces: &[QueryTrace]) -> (Vec<u64>, AccelRunResult) {
    let mut per_query = Vec::with_capacity(traces.len());
    let mut agg = AccelRunResult::default();
    for t in traces {
        sim.reset_query();
        let r = sim.run_query(&t.motions);
        per_query.push(r.cdqs_executed());
        agg.motions += r.motions;
        agg.colliding_motions += r.colliding_motions;
        agg.total_cycles += r.total_cycles;
        agg.events.merge(&r.events);
    }
    (per_query, agg)
}

/// Fig. 15: CDQs executed by COPU vs the CSP baseline across difficulty
/// groups G1–G5 for the six algorithm-robot combinations.
pub fn fig15(work: &mut Workloads) -> String {
    let mut out = String::new();
    let mut avg_rows = Vec::new();
    for combo in Combo::paper_six() {
        let traces = work.traces(combo).to_vec();
        let robot = combo.robot.robot();
        let hash = CoordHash::paper_default(&robot);
        let mut base = AccelSim::new(AccelConfig::baseline(7), hash.clone());
        let mut copu = AccelSim::new(AccelConfig::copu(7, fig15_cht(combo.robot)), hash);
        let (base_q, base_agg) = run_per_query(&mut base, &traces);
        let (copu_q, copu_agg) = run_per_query(&mut copu, &traces);
        let groups = copred_envgen::group_by_difficulty(&base_q, |c| *c);
        let g1_mean = {
            let g = &groups[0];
            (g.iter().map(|&i| base_q[i]).sum::<u64>() as f64 / g.len().max(1) as f64).max(1.0)
        };
        let mut rows = Vec::new();
        for (g, idxs) in groups.iter().enumerate() {
            let b: u64 = idxs.iter().map(|&i| base_q[i]).sum();
            let c: u64 = idxs.iter().map(|&i| copu_q[i]).sum();
            let n = idxs.len().max(1) as f64;
            rows.push(vec![
                copred_envgen::group_label(g),
                num(b as f64 / n / g1_mean, 3),
                num(c as f64 / n / g1_mean, 3),
                pct(if b > 0 {
                    1.0 - c as f64 / b as f64
                } else {
                    0.0
                }),
            ]);
        }
        out.push_str(&render_table(
            &format!(
                "Fig. 15 — {} (CDQs normalized to G1 CSP mean)",
                combo.label()
            ),
            &["group", "CSP", "COPU", "COPU reduction"],
            &rows,
        ));
        out.push('\n');
        avg_rows.push(vec![
            combo.label(),
            pct(1.0 - copu_agg.cdqs_executed() as f64 / base_agg.cdqs_executed().max(1) as f64),
        ]);
    }
    out.push_str(&render_table(
        "Fig. 15 — average COPU CDQ reduction vs CSP per combo",
        &["combo", "reduction"],
        &avg_rows,
    ));
    out
}

/// Fig. 16: perf/mm², perf/watt, and latency for baseline.x vs COPU.x,
/// x ∈ {1, 2, 4, 6}, MPNet-Baxter, CHT 4096×1 (S=0, U=0).
pub fn fig16(work: &mut Workloads) -> String {
    let combo = Combo {
        algo: crate::workloads::Algo::Mpnet,
        robot: RobotKind::Baxter,
    };
    let traces = work.traces(combo).to_vec();
    let robot = combo.robot.robot();
    let em = EnergyModel::default();
    let am = AreaModel::default();
    let mut rows = Vec::new();
    for &x in &[1usize, 2, 4, 6] {
        let hash = CoordHash::paper_default(&robot);
        let mut base = AccelSim::new(AccelConfig::baseline(x), hash.clone());
        let mut copu = AccelSim::new(AccelConfig::copu(x, perf_cht(combo.robot)), hash);
        let (_, rb) = run_per_query(&mut base, &traces);
        let (_, rc) = run_per_query(&mut copu, &traces);
        let pb = perf_report(&base, &rb, &em, &am);
        let pc = perf_report(&copu, &rc, &em, &am);
        rows.push(vec![
            format!("x={x}"),
            ratio(pc.perf_per_mm2 / pb.perf_per_mm2),
            ratio(pc.perf_per_watt / pb.perf_per_watt),
            ratio(pb.mean_latency_cycles / pc.mean_latency_cycles.max(1.0)),
            pct(1.0
                - rc.energy_with_cht_pj(&em, pc.area_mm2, &perf_cht(combo.robot))
                    / rb.energy_with_cht_pj(&em, pb.area_mm2, &perf_cht(combo.robot))
                        .max(1e-12)),
        ]);
    }
    render_table(
        "Fig. 16 — COPU.x vs baseline.x (MPNet-Baxter, 4096x1 CHT, S=0, U=0)",
        &[
            "CDUs",
            "perf/mm2",
            "perf/watt",
            "speedup",
            "energy reduction",
        ],
        &rows,
    )
}

/// Fig. 17: QNONCOLL queue-size sweep — CDQ reduction vs the CSP baseline.
pub fn fig17(work: &mut Workloads) -> String {
    let combos = [
        Combo {
            algo: crate::workloads::Algo::Mpnet,
            robot: RobotKind::Baxter,
        },
        Combo {
            algo: crate::workloads::Algo::Gnnmp,
            robot: RobotKind::Kuka,
        },
        Combo {
            algo: crate::workloads::Algo::BitStar,
            robot: RobotKind::Planar2d,
        },
    ];
    let sizes = [2usize, 4, 8, 16, 32, 56, 128];
    let mut rows = Vec::new();
    for combo in combos {
        let traces = work.traces(combo).to_vec();
        let robot = combo.robot.robot();
        let hash = CoordHash::paper_default(&robot);
        let mut base = AccelSim::new(AccelConfig::baseline(7), hash.clone());
        let (_, rb) = run_per_query(&mut base, &traces);
        let mut cells = vec![combo.label()];
        for &q in &sizes {
            let cfg = AccelConfig {
                qnoncoll_len: q,
                ..AccelConfig::copu(7, fig15_cht(combo.robot))
            };
            let mut sim = AccelSim::new(cfg, hash.clone());
            let (_, rc) = run_per_query(&mut sim, &traces);
            cells.push(pct(
                1.0 - rc.cdqs_executed() as f64 / rb.cdqs_executed().max(1) as f64
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("combo".to_string())
        .chain(sizes.iter().map(|s| format!("Q={s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    render_table(
        "Fig. 17 — QNONCOLL queue-size sweep (CDQ reduction vs CSP)",
        &header_refs,
        &rows,
    )
}

/// Fig. 18a/b: CDQ-reduction sensitivity to the strategy S and the update
/// frequency U, per combo.
pub fn fig18(work: &mut Workloads) -> String {
    let s_values = [0.0, 0.25, 0.5, 1.0, 2.0];
    let u_values = [1.0, 0.5, 0.125, 0.03125];
    let mut s_rows = Vec::new();
    let mut u_rows = Vec::new();
    for combo in Combo::paper_six() {
        let traces = work.traces(combo).to_vec();
        let robot = combo.robot.robot();
        let hash = CoordHash::paper_default(&robot);
        let mut base = AccelSim::new(AccelConfig::baseline(7), hash.clone());
        let (_, rb) = run_per_query(&mut base, &traces);
        let reduction = |cht: ChtParams| {
            let mut sim = AccelSim::new(AccelConfig::copu(7, cht), hash.clone());
            let (_, rc) = run_per_query(&mut sim, &traces);
            1.0 - rc.cdqs_executed() as f64 / rb.cdqs_executed().max(1) as f64
        };
        let mut s_cells = vec![combo.label()];
        for &s in &s_values {
            let cht = ChtParams {
                strategy: Strategy::new(s),
                ..fig15_cht(combo.robot)
            };
            s_cells.push(pct(reduction(cht)));
        }
        s_rows.push(s_cells);
        let mut u_cells = vec![combo.label()];
        for &u in &u_values {
            let cht = ChtParams {
                update_fraction: u,
                ..fig15_cht(combo.robot)
            };
            u_cells.push(pct(reduction(cht)));
        }
        u_rows.push(u_cells);
    }
    let s_headers: Vec<String> = std::iter::once("combo".to_string())
        .chain(s_values.iter().map(|s| format!("S={s}")))
        .collect();
    let u_headers: Vec<String> = std::iter::once("combo".to_string())
        .chain(u_values.iter().map(|u| format!("U={u}")))
        .collect();
    let mut out = render_table(
        "Fig. 18a — CDQ reduction vs strategy S",
        &s_headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &s_rows,
    );
    out.push('\n');
    out.push_str(&render_table(
        "Fig. 18b — CDQ reduction vs update frequency U",
        &u_headers.iter().map(String::as_str).collect::<Vec<_>>(),
        &u_rows,
    ));
    out
}

/// §VI-B1: the component area/energy overhead table from the calibrated
/// models.
pub fn tab_overheads() -> String {
    let r = mpaccel_overheads(&EnergyModel::default(), &AreaModel::default(), 7.0);
    render_table(
        "§VI-B1 — COPU component overheads on a 24-CDU MPAccel",
        &["component", "area overhead", "energy overhead", "paper"],
        &[
            vec![
                "CHT 4096x8".into(),
                pct(r.cht8_area),
                pct(r.cht8_energy),
                "1.96% / 1.01%".into(),
            ],
            vec![
                "CHT 4096x1".into(),
                pct(r.cht1_area),
                pct(r.cht1_energy),
                "0.55% / 0.28%".into(),
            ],
            vec![
                "QCOLL+QNONCOLL".into(),
                pct(r.queues_area),
                pct(r.queues_energy),
                "2.6% / 1.4%".into(),
            ],
        ],
    )
}
