//! Predictor design-space figures: Fig. 9 (hash functions), Fig. 13
//! (strategy S), Fig. 14 (update policy U).
//!
//! Metrics follow the paper's definitions: precision is "the fraction of
//! poses in collision from poses predicted for collision" — *pose-level*
//! aggregation over the per-link CDQ predictions, with the table updated
//! online as CDQs execute.

use crate::table::{pct, render_table};
use crate::workloads::Scale;
use copred_core::hash::CollisionHash;
use copred_core::statmodel::{computation_decrease, StatModelParams};
use copred_core::{
    ChtParams, CoordHash, EncoordHash, EnposeHash, HashInput, PoseFoldHash, PoseHash, PosePartHash,
    PredictionMetrics, Predictor, Strategy,
};
use copred_envgen::{random_scene, Density};
use copred_geometry::Vec3;
use copred_kinematics::{presets, Config, Robot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One evaluation pose: its configuration and per-link CDQ ground truth.
struct PoseCase {
    config: Config,
    cdqs: Vec<(Vec3, bool)>,
}

/// Builds per-scene, per-pose CDQ cases for the predictor studies (the
/// paper's 1000 random poses per random scene).
fn scene_cases(robot: &Robot, density: Density, scale: &Scale, seed: u64) -> Vec<Vec<PoseCase>> {
    (0..scale.scenes)
        .map(|s| {
            let scene = random_scene(robot, density, scale.poses_per_scene, seed + s as u64);
            scene
                .poses
                .iter()
                .map(|q| {
                    let cdqs = copred_collision::enumerate_pose_cdqs(robot, &scene.env, q)
                        .into_iter()
                        .map(|c| (c.center, c.colliding))
                        .collect();
                    PoseCase {
                        config: q.clone(),
                        cdqs,
                    }
                })
                .collect()
        })
        .collect()
}

/// Streams the cases through a predictor (fresh history per scene) and
/// scores pose-level precision/recall: a pose is predicted colliding when
/// any of its link CDQs is predicted, and actually colliding when any link
/// CDQ collides. Each CDQ's outcome updates the table right after its
/// prediction, matching the online hardware protocol.
fn eval_hasher(
    hasher: Box<dyn CollisionHash>,
    strategy: Strategy,
    update_fraction: f64,
    scenes: &[Vec<PoseCase>],
) -> PredictionMetrics {
    let bits = hasher.bits();
    let mut metrics = PredictionMetrics::new();
    let mut predictor = Predictor::new(
        hasher,
        ChtParams {
            bits,
            counter_bits: 4,
            strategy,
            update_fraction,
        },
        9,
    );
    for scene in scenes {
        predictor.reset();
        for case in scene {
            // Predict every link CDQ of the pose *before* observing any of
            // the pose's outcomes — a pose must not predict itself from its
            // own results (that would count collisions already found).
            let mut pose_predicted = false;
            let mut pose_actual = false;
            for &(center, colliding) in &case.cdqs {
                let input = HashInput {
                    config: &case.config,
                    center,
                };
                if predictor.predict(&input) {
                    pose_predicted = true;
                }
                pose_actual |= colliding;
            }
            for &(center, colliding) in &case.cdqs {
                let input = HashInput {
                    config: &case.config,
                    center,
                };
                predictor.observe(&input, colliding);
            }
            metrics.record(pose_predicted, pose_actual);
        }
    }
    metrics
}

/// Fig. 9: precision and recall of the hash-function design space for low-
/// and high-clutter environments (Jaco2, random poses). The paper's default
/// strategy (S = 1, U = 0.125) is used throughout.
pub fn fig9(scale: &Scale) -> String {
    let robot: Robot = presets::jaco2().into();
    let mut rng = StdRng::seed_from_u64(2024);
    let train_poses = 8192.min(EnposeHash::TRAIN_POSES);
    let mut out = String::new();
    for density in [Density::Low, Density::High] {
        let scenes = scene_cases(&robot, density, scale, 77);
        let base_rate = {
            let total: usize = scenes.iter().map(Vec::len).sum();
            let coll: usize = scenes
                .iter()
                .flatten()
                .filter(|c| c.cdqs.iter().any(|&(_, x)| x))
                .count();
            coll as f64 / total.max(1) as f64
        };
        let hashers: Vec<(String, Box<dyn CollisionHash>)> = vec![
            named(PoseHash::new(&robot, 2)),
            named(PoseHash::new(&robot, 3)),
            named(PoseHash::new(&robot, 4)),
            named(PoseFoldHash::new(&robot, 4, 10)),
            named(PoseFoldHash::new(&robot, 4, 12)),
            named(PoseFoldHash::new(&robot, 4, 14)),
            named(PosePartHash::new(&robot, 5)),
            named(PosePartHash::new(&robot, 6)),
            named(PosePartHash::new(&robot, 7)),
            named(EnposeHash::train(&robot, 2, 5, train_poses, 4, &mut rng)),
            named(EnposeHash::train(&robot, 2, 6, train_poses, 4, &mut rng)),
            named(CoordHash::for_robot(&robot, 3)),
            named(CoordHash::for_robot(&robot, 4)),
            named(CoordHash::for_robot(&robot, 5)),
            named(EncoordHash::train(&robot, 2, 5, train_poses, 4, &mut rng)),
            named(EncoordHash::train(&robot, 2, 6, train_poses, 4, &mut rng)),
        ];
        let mut rows = Vec::new();
        for (label, h) in hashers {
            let m = eval_hasher(h, Strategy::new(1.0), 0.125, &scenes);
            rows.push(vec![label, pct(m.precision()), pct(m.recall())]);
        }
        out.push_str(&render_table(
            &format!(
                "Fig. 9 ({}-clutter, random baseline precision {}) — hash functions",
                density.label(),
                pct(base_rate)
            ),
            &["hash (bits)", "precision", "recall"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

fn named<H: CollisionHash + 'static>(h: H) -> (String, Box<dyn CollisionHash>) {
    (h.name(), Box::new(h))
}

/// Fig. 13: prediction strategy sweep (S ∈ {0, 1/4, 1/2, 1, 2}) across
/// obstacle densities, with the statistical computation-reduction model.
pub fn fig13(scale: &Scale) -> String {
    let robot: Robot = presets::jaco2().into();
    let mut out = String::new();
    let mut rng = StdRng::seed_from_u64(5);
    for (di, density) in Density::all().into_iter().enumerate() {
        let scenes = scene_cases(&robot, density, scale, 900 + 37 * di as u64);
        let mut rows = Vec::new();
        for &s in &[0.0, 0.25, 0.5, 1.0, 2.0] {
            let m = eval_hasher(
                Box::new(CoordHash::paper_default(&robot)),
                Strategy::new(s),
                0.125,
                &scenes,
            );
            let params = StatModelParams {
                cdqs_per_motion: 80,
                collision_prob: m.base_rate(),
                precision: m.precision(),
                recall: m.recall(),
                trials: scale.mc_trials,
            };
            let dec = computation_decrease(&params, &mut rng);
            rows.push(vec![
                format!("S={s}"),
                pct(m.precision()),
                pct(m.recall()),
                pct(dec),
            ]);
        }
        out.push_str(&render_table(
            &format!("Fig. 13 ({}-density) — strategy S sweep", density.label()),
            &["S", "precision", "recall", "computation decrease"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Ablation (paper §VI-A1 future work): adaptive `S` chosen from the
/// measured environment clutter versus every fixed strategy, per density.
pub fn ablation_adaptive_s(scale: &Scale) -> String {
    let robot: Robot = presets::jaco2().into();
    let mut rng = StdRng::seed_from_u64(8);
    let mut rows = Vec::new();
    for (di, density) in Density::all().into_iter().enumerate() {
        let scenes = scene_cases(&robot, density, scale, 3200 + 17 * di as u64);
        let decrease = |strategy: Strategy, rng: &mut StdRng| {
            let m = eval_hasher(
                Box::new(CoordHash::paper_default(&robot)),
                strategy,
                0.125,
                &scenes,
            );
            let params = StatModelParams {
                cdqs_per_motion: 80,
                collision_prob: m.base_rate(),
                precision: m.precision(),
                recall: m.recall(),
                trials: scale.mc_trials,
            };
            computation_decrease(&params, rng)
        };
        // The adaptive heuristic keys off the density class's target clutter
        // (at runtime this would come from the voxel map).
        let adaptive = Strategy::adaptive_for_clutter(density.target());
        let mut cells = vec![density.label().to_string()];
        let mut best_fixed = f64::NEG_INFINITY;
        for &s in &[0.0, 0.5, 1.0, 2.0] {
            let d = decrease(Strategy::new(s), &mut rng);
            best_fixed = best_fixed.max(d);
            cells.push(pct(d));
        }
        let d_adaptive = decrease(adaptive, &mut rng);
        cells.push(format!("{} (S={})", pct(d_adaptive), adaptive.s()));
        cells.push(pct(best_fixed));
        rows.push(cells);
    }
    render_table(
        "Ablation — adaptive S from clutter vs fixed strategies (computation decrease)",
        &[
            "density",
            "S=0",
            "S=0.5",
            "S=1",
            "S=2",
            "adaptive",
            "best fixed",
        ],
        &rows,
    )
}

/// Fig. 14: CHT update-frequency sweep (U) for S ∈ {0, 1}, medium density.
pub fn fig14(scale: &Scale) -> String {
    let robot: Robot = presets::jaco2().into();
    let scenes = scene_cases(&robot, Density::Medium, scale, 1414);
    let mut rng = StdRng::seed_from_u64(6);
    let mut rows = Vec::new();
    for &s in &[0.0, 1.0] {
        for &u in &[1.0, 0.5, 0.125, 0.03125] {
            let m = eval_hasher(
                Box::new(CoordHash::paper_default(&robot)),
                Strategy::new(s),
                u,
                &scenes,
            );
            let params = StatModelParams {
                cdqs_per_motion: 80,
                collision_prob: m.base_rate(),
                precision: m.precision(),
                recall: m.recall(),
                trials: scale.mc_trials,
            };
            let dec = computation_decrease(&params, &mut rng);
            rows.push(vec![
                format!("S={s} U={u}"),
                pct(m.precision()),
                pct(m.recall()),
                pct(dec),
            ]);
        }
    }
    render_table(
        "Fig. 14 (medium density) — update frequency U sweep",
        &["config", "precision", "recall", "computation decrease"],
        &rows,
    )
}
