//! # copred-bench
//!
//! Figure/table regeneration harnesses for the COORD reproduction. Every
//! table and figure of the paper's evaluation has a function here and a
//! thin binary under `src/bin/` (plus `all_figures`, which regenerates
//! everything). Workload sizes follow `COPRED_SCALE` (`quick` default,
//! `full` for paper-scale runs).

#![warn(missing_docs)]

pub mod figures;
pub mod perfwatch;
pub mod replay;
pub mod table;
pub mod workloads;

pub use workloads::{Algo, Combo, RobotKind, Scale, Workloads};
