//! The canonical seeded benchmark suite behind the `copred_bench` binary:
//! schedule CDQ-reduction on planner workloads, swexec CPU/GPU replay,
//! loopback server latency from the service's `LatencyHistogram`, and
//! `AccelSim` cycles/energy/perf-per-watt — emitted as a
//! [`copred_obs::BenchReport`] (`BENCH_<label>.json`) so every run joins
//! the repo's machine-readable benchmark trajectory.
//!
//! Deterministic metrics (counts, simulated cycles, modeled energy) are
//! measured once and must reproduce bit-identically under a fixed seed;
//! wall-clock metrics run `reps` times and report median/mean/stddev.

use crate::replay::{replay_coord, replay_schedule};
use crate::workloads::{planner_traces, planner_traces_with_scenes, Algo, Combo, RobotKind, Scale};
use copred_accel::{
    accel_prom_page, perf_report, stall_profile, AccelConfig, AccelObserver, AccelRunResult,
    AccelSim, AreaModel, EnergyModel,
};
use copred_collision::{Environment, Schedule};
use copred_core::{ChtParams, CoordHash};
use copred_geometry::{Aabb, Vec3};
use copred_geometry::{BatchObb, Obb, OBB_LANES};
use copred_kinematics::{presets, Motion, Robot};
use copred_obs::{BenchRecord, BenchReport, Better};
use copred_planners::{MotionRecord, PlanLog, Stage};
use copred_service::protocol::SchedMode;
use copred_service::{run_loadgen, LoadgenConfig, Pacing, Server, ServerConfig};
use copred_swexec::{
    run_cpu, run_cpu_batched, run_gpu_model, CpuExecConfig, GpuModelParams, MOTION_LANES,
};
use copred_trace::{MotionTrace, QueryTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one `copred_bench` invocation measures.
#[derive(Debug, Clone)]
pub struct PerfwatchConfig {
    /// Run label — lands in the report header and the default file name.
    pub label: String,
    /// Workload seed; same seed ⇒ byte-identical deterministic metrics.
    pub seed: u64,
    /// Repetitions for wall-clock metrics.
    pub reps: usize,
    /// `quick` (CI-sized) or `full` workloads.
    pub quick: bool,
}

impl PerfwatchConfig {
    /// The CI-sized suite (seconds, offline).
    pub fn quick() -> Self {
        PerfwatchConfig {
            label: "quick".to_string(),
            seed: 42,
            reps: 3,
            quick: true,
        }
    }

    /// The larger nightly-sized suite.
    pub fn full() -> Self {
        PerfwatchConfig {
            label: "full".to_string(),
            seed: 42,
            reps: 5,
            quick: false,
        }
    }

    /// Scale name recorded in the report header.
    pub fn scale_name(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }

    fn planner_scale(&self) -> Scale {
        Scale {
            queries: if self.quick { 3 } else { 8 },
            ..Scale::quick()
        }
    }

    fn schedule_combos(&self) -> Vec<Combo> {
        let planar = |algo| Combo {
            algo,
            robot: RobotKind::Planar2d,
        };
        if self.quick {
            vec![planar(Algo::Mpnet), planar(Algo::Gnnmp)]
        } else {
            vec![
                planar(Algo::Mpnet),
                planar(Algo::Gnnmp),
                planar(Algo::BitStar),
                Combo {
                    algo: Algo::Mpnet,
                    robot: RobotKind::Baxter,
                },
            ]
        }
    }

    fn sim_motions(&self) -> usize {
        if self.quick {
            60
        } else {
            300
        }
    }
}

/// The short git SHA of the working tree, or `unknown` outside a checkout
/// (git SHAs are run provenance, never compared by the baseline checker).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A fixed seeded planar workload shared by the swexec and accel suites:
/// random motions against two obstacles, with ground-truth collision
/// labels, as both raw pose lists and CDQ traces.
fn sim_workload(n: usize, seed: u64) -> (Robot, Environment, Vec<MotionTrace>) {
    let robot: Robot = presets::planar_2d().into();
    // Dense enough that roughly half the motions collide: the COPU design
    // point is collision-heavy planner traffic (early exit pays there).
    let env = Environment::new(
        robot.workspace(),
        vec![
            Aabb::new(Vec3::new(0.1, -1.0, -0.1), Vec3::new(0.5, 0.6, 0.1)),
            Aabb::new(Vec3::new(-0.7, -0.3, -0.1), Vec3::new(-0.4, 0.0, 0.1)),
            Aabb::new(Vec3::new(-0.2, 0.55, -0.1), Vec3::new(0.2, 0.9, 0.1)),
            Aabb::new(Vec3::new(-1.0, -0.9, -0.1), Vec3::new(-0.5, -0.6, 0.1)),
            Aabb::new(Vec3::new(0.6, -0.6, -0.1), Vec3::new(0.95, -0.2, 0.1)),
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<MotionRecord> = (0..n)
        .map(|_| {
            let poses = Motion::new(
                robot.sample_uniform(&mut rng),
                robot.sample_uniform(&mut rng),
            )
            .discretize(24);
            let colliding = copred_collision::motion_collides(&robot, &env, &poses);
            MotionRecord {
                poses,
                stage: Stage::Explore,
                colliding,
            }
        })
        .collect();
    let trace = QueryTrace::from_log(&robot, &env, &PlanLog { records });
    (robot, env, trace.motions)
}

/// Runs the full suite and returns the report (no file I/O).
pub fn run_suites(cfg: &PerfwatchConfig) -> BenchReport {
    let mut report = BenchReport::new(&cfg.label, &git_sha(), cfg.seed, cfg.scale_name());
    schedule_suite(cfg, &mut report.records);
    swexec_suite(cfg, &mut report.records);
    swexec_batch_suite(cfg, &mut report.records);
    service_suite(cfg, &mut report.records);
    fleet_suite(cfg, &mut report.records);
    store_suite(cfg, &mut report.records);
    accel_suite(cfg, &mut report.records);
    profile_suite(cfg, &mut report.records);
    report
}

/// Schedule suite: CDQ counts of the reference schedules and software
/// COORD on planner-generated workloads — the paper's Fig. 15 axis.
fn schedule_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let scale = cfg.planner_scale();
    for combo in cfg.schedule_combos() {
        let traces = planner_traces(&combo, &scale, cfg.seed);
        let robot = combo.robot.robot();
        let hash = CoordHash::paper_default(&robot);
        let cht = match combo.robot {
            RobotKind::Planar2d => ChtParams::paper_2d(),
            _ => ChtParams::paper_arm(),
        };
        let mut naive = 0u64;
        let mut csp = 0u64;
        let mut coord = 0u64;
        for t in &traces {
            naive += replay_schedule(t, Schedule::Naive);
            csp += replay_schedule(t, Schedule::csp_default());
            coord += replay_coord(t, &hash, cht, cfg.seed);
        }
        let label = combo.label();
        out.push(BenchRecord::deterministic(
            "schedule",
            &format!("{label}_cdqs_naive"),
            naive as f64,
            "cdqs",
            Better::Lower,
        ));
        out.push(BenchRecord::deterministic(
            "schedule",
            &format!("{label}_cdqs_csp"),
            csp as f64,
            "cdqs",
            Better::Lower,
        ));
        out.push(BenchRecord::deterministic(
            "schedule",
            &format!("{label}_cdqs_coord"),
            coord as f64,
            "cdqs",
            Better::Lower,
        ));
        out.push(BenchRecord::deterministic(
            "schedule",
            &format!("{label}_coord_saved_vs_csp"),
            1.0 - coord as f64 / csp.max(1) as f64,
            "fraction",
            Better::Higher,
        ));
    }
}

/// Swexec suite: software-executor CDQ counts (deterministic at one
/// thread; the multithreaded interleaving is not) plus wall-clock replay
/// throughput, and the modeled GPU executor.
fn swexec_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let (robot, env, motions) = sim_workload(cfg.sim_motions(), cfg.seed);
    let poses: Vec<Vec<copred_kinematics::Config>> =
        motions.iter().map(|m| m.poses.clone()).collect();

    // Deterministic: single-threaded CPU replay (shared-CHT interleaving
    // makes multi-threaded CDQ counts run-dependent).
    let det = run_cpu(
        &robot,
        &env,
        &poses,
        &CpuExecConfig {
            n_threads: 1,
            with_prediction: true,
            cht_params: ChtParams::paper_2d(),
            seed: cfg.seed,
        },
    );
    out.push(BenchRecord::deterministic(
        "swexec",
        "cpu_cdqs_1t",
        det.cdqs_executed as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "swexec",
        "cpu_colliding_motions",
        det.colliding_motions as f64,
        "motions",
        Better::Higher,
    ));

    // Timing: multithreaded replay throughput.
    let samples: Vec<f64> = (0..cfg.reps)
        .map(|_| {
            let r = run_cpu(
                &robot,
                &env,
                &poses,
                &CpuExecConfig {
                    n_threads: 4,
                    with_prediction: true,
                    cht_params: ChtParams::paper_2d(),
                    seed: cfg.seed,
                },
            );
            poses.len() as f64 / r.wall_time.as_secs_f64().max(1e-9)
        })
        .collect();
    out.push(BenchRecord::timing(
        "swexec",
        "cpu_motions_per_s_4t",
        &samples,
        "motions_per_s",
        Better::Higher,
    ));

    // Deterministic: the GPU analytic model (counts and modeled time).
    let gpu_pred = run_gpu_model(
        &motions,
        MOTION_LANES,
        true,
        &GpuModelParams::default(),
        ChtParams::paper_2d(),
        cfg.seed,
    );
    let gpu_base = run_gpu_model(
        &motions,
        MOTION_LANES,
        false,
        &GpuModelParams::default(),
        ChtParams::paper_2d(),
        cfg.seed,
    );
    out.push(BenchRecord::deterministic(
        "swexec",
        "gpu_cdqs_64t",
        gpu_pred.cdqs as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "swexec",
        "gpu_modeled_time_64t",
        gpu_pred.time,
        "model_units",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "swexec",
        "gpu_cdqs_saved_frac",
        1.0 - gpu_pred.cdqs as f64 / gpu_base.cdqs.max(1) as f64,
        "fraction",
        Better::Higher,
    ));
}

/// Swexec-batch suite: the SoA/SWAR hot path against its scalar
/// reference. Deterministic records pin bit-equivalence (the batched
/// single-threaded replay must reproduce the scalar CDQ count and
/// colliding-motion count exactly); timing records measure the full
/// environment CDQ path (transpose + broad phase + SAT) scalar vs 8-lane
/// batched over the workload's enumerated link OBBs, the pure
/// lane-parallel AABB kernel the same way, the resulting speedups, and
/// batched replay throughput. The two speedups bracket the story: the
/// AABB kernel is straight-line lane math (the clean SoA win), while the
/// full path also carries the AoS→SoA transpose and competes against the
/// scalar cascade's first-hit early exits.
fn swexec_batch_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let (robot, env, motions) = sim_workload(cfg.sim_motions(), cfg.seed);
    let poses: Vec<Vec<copred_kinematics::Config>> =
        motions.iter().map(|m| m.poses.clone()).collect();
    let exec_cfg = CpuExecConfig {
        n_threads: 1,
        with_prediction: true,
        cht_params: ChtParams::paper_2d(),
        seed: cfg.seed,
    };

    // Deterministic: batched replay equals the scalar reference.
    let scalar = run_cpu(&robot, &env, &poses, &exec_cfg);
    let batched = run_cpu_batched(&robot, &env, &poses, &exec_cfg);
    out.push(BenchRecord::deterministic(
        "swexec_batch",
        "batch_cdqs_1t",
        batched.cdqs_executed as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "swexec_batch",
        "batch_matches_scalar",
        f64::from(u8::from(
            batched.cdqs_executed == scalar.cdqs_executed
                && batched.colliding_motions == scalar.colliding_motions,
        )),
        "bool",
        Better::Higher,
    ));

    // The raw-SAT kernel corpus: every link OBB of every pose, flattened.
    let obbs: Vec<Obb> = poses
        .iter()
        .flat_map(|ps| ps.iter())
        .flat_map(|q| robot.fk(q).links.into_iter().map(|l| l.obb))
        .collect();
    let passes = if cfg.quick { 40 } else { 120 };

    // Per-rep paired measurement so the speedup ratio samples see the same
    // machine state in both arms.
    let mut scalar_tp = Vec::with_capacity(cfg.reps);
    let mut batch_tp = Vec::with_capacity(cfg.reps);
    let mut speedup = Vec::with_capacity(cfg.reps);
    for _ in 0..cfg.reps.max(1) {
        let t0 = std::time::Instant::now();
        for _ in 0..passes {
            for obb in &obbs {
                std::hint::black_box(env.obb_collides_with_cost(std::hint::black_box(obb)));
            }
        }
        let scalar_s = t0.elapsed().as_secs_f64().max(1e-9);

        let t1 = std::time::Instant::now();
        for _ in 0..passes {
            for chunk in obbs.chunks(OBB_LANES) {
                let batch = BatchObb::from_obbs(chunk);
                std::hint::black_box(
                    env.obb_collides_batch_with_cost(std::hint::black_box(&batch)),
                );
            }
        }
        let batch_s = t1.elapsed().as_secs_f64().max(1e-9);

        let cdqs = (obbs.len() * passes) as f64;
        scalar_tp.push(cdqs / scalar_s);
        batch_tp.push(cdqs / batch_s);
        speedup.push(scalar_s / batch_s);
    }
    out.push(BenchRecord::timing(
        "swexec_batch",
        "sat_scalar_cdq_per_s",
        &scalar_tp,
        "cdq_per_s",
        Better::Higher,
    ));
    out.push(BenchRecord::timing(
        "swexec_batch",
        "sat_batch_cdq_per_s",
        &batch_tp,
        "cdq_per_s",
        Better::Higher,
    ));
    out.push(BenchRecord::timing(
        "swexec_batch",
        "sat_batch_speedup",
        &speedup,
        "ratio",
        Better::Higher,
    ));

    // Paired AABB-kernel measurement: scalar `Obb::aabb` vs lane-parallel
    // `BatchObb::aabbs` over prebuilt batches. No early exits on either
    // side, so this isolates the lane-parallel arithmetic win.
    let batches: Vec<BatchObb> = obbs.chunks(OBB_LANES).map(BatchObb::from_obbs).collect();
    let mut aabb_speedup = Vec::with_capacity(cfg.reps);
    for _ in 0..cfg.reps.max(1) {
        let t0 = std::time::Instant::now();
        for _ in 0..passes {
            for obb in &obbs {
                std::hint::black_box(std::hint::black_box(obb).aabb());
            }
        }
        let scalar_s = t0.elapsed().as_secs_f64().max(1e-9);
        let t1 = std::time::Instant::now();
        for _ in 0..passes {
            for batch in &batches {
                std::hint::black_box(std::hint::black_box(batch).aabbs());
            }
        }
        let batch_s = t1.elapsed().as_secs_f64().max(1e-9);
        aabb_speedup.push(scalar_s / batch_s);
    }
    out.push(BenchRecord::timing(
        "swexec_batch",
        "aabb_batch_speedup",
        &aabb_speedup,
        "ratio",
        Better::Higher,
    ));

    // Timing: end-to-end batched replay throughput at 4 threads.
    let samples: Vec<f64> = (0..cfg.reps.max(1))
        .map(|_| {
            let r = run_cpu_batched(
                &robot,
                &env,
                &poses,
                &CpuExecConfig {
                    n_threads: 4,
                    ..exec_cfg
                },
            );
            poses.len() as f64 / r.wall_time.as_secs_f64().max(1e-9)
        })
        .collect();
    out.push(BenchRecord::timing(
        "swexec_batch",
        "batch_motions_per_s_4t",
        &samples,
        "motions_per_s",
        Better::Higher,
    ));
}

/// The committed canonical quick service workload: an MPNet-2D coord run
/// recorded by `copred_loadgen` (connections=1, so the op order is total
/// and replay is bit-deterministic), sanitized with `copred_replay
/// sanitize`. Regenerate with the commands in `workloads/README.md`.
const SERVICE_QUICK_LOG: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../workloads/service_quick.cprlog"
));

/// Service suite: the committed `workloads/service_quick.cprlog` op-log
/// replayed (sequential mode) against a fresh loopback server per
/// repetition, so the perf gate measures the service on a byte-stable
/// workload instead of one regenerated from planners each run.
/// p50/p95/p99 come from the server's own `LatencyHistogram` (the metric
/// the `/metrics` page exports).
fn service_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let log = copred_replay::read_log(SERVICE_QUICK_LOG).expect("committed service log parses");
    assert!(log.complete, "committed service log must be sealed");
    let mut p50 = Vec::new();
    let mut p95 = Vec::new();
    let mut p99 = Vec::new();
    let mut throughput = Vec::new();
    let mut cdqs_issued = 0u64;
    let mut checks = 0u64;
    for rep in 0..cfg.reps.max(1) {
        let mut backend = copred_replay::LoopbackBackend::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .expect("start loopback server");
        // Comparison off: bit-identity is the replay-gate's job; the perf
        // gate only times the run (counters still land in the baseline,
        // so a semantic change is caught as a deterministic diff there).
        let opts = copred_replay::ReplayOptions {
            mode: copred_replay::ReplayMode::Sequential,
            compare: false,
            trace_seed: None,
        };
        let r = copred_replay::run_replay(&log, &mut backend, &opts).expect("loopback replay");
        let server = backend.server().expect("owned server");
        let hist = &server.metrics().check_latency;
        p50.push(hist.quantile(0.5).unwrap_or(0) as f64);
        p95.push(hist.quantile(0.95).unwrap_or(0) as f64);
        p99.push(hist.quantile(0.99).unwrap_or(0) as f64);
        throughput.push(r.checks_per_sec());
        if rep == 0 {
            cdqs_issued = r.cdqs_issued;
            checks = r.checks;
        }
    }
    out.push(BenchRecord::deterministic(
        "service",
        "loopback_cdqs_issued",
        cdqs_issued as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "service",
        "loopback_checks",
        checks as f64,
        "checks",
        Better::Higher,
    ));
    out.push(BenchRecord::timing(
        "service",
        "loopback_p50_ns",
        &p50,
        "ns",
        Better::Lower,
    ));
    out.push(BenchRecord::timing(
        "service",
        "loopback_p95_ns",
        &p95,
        "ns",
        Better::Lower,
    ));
    out.push(BenchRecord::timing(
        "service",
        "loopback_p99_ns",
        &p99,
        "ns",
        Better::Lower,
    ));
    out.push(BenchRecord::timing(
        "service",
        "loopback_checks_per_s",
        &throughput,
        "checks_per_s",
        Better::Higher,
    ));
}

/// Fleet suite: the committed quick service workload replayed through a
/// 2-backend fleet (rendezvous routing, router-owned session ids) and a
/// single in-process node. Deterministic records pin the fleet's
/// aggregates and its response-for-response equality with the single
/// node; the timing record watches routed throughput, whose overhead vs
/// `service/loopback_checks_per_s` is the cost of the extra hop.
fn fleet_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let log = copred_replay::read_log(SERVICE_QUICK_LOG).expect("committed service log parses");
    let opts = copred_replay::ReplayOptions {
        mode: copred_replay::ReplayMode::Sequential,
        compare: false,
        trace_seed: None,
    };
    let mut single = copred_replay::InProcessBackend::with_server_defaults();
    let single_run =
        copred_replay::run_replay(&log, &mut single, &opts).expect("single-node replay");
    let mut throughput = Vec::new();
    let mut cdqs_issued = 0u64;
    let mut checks = 0u64;
    let mut matches_single = true;
    for rep in 0..cfg.reps.max(1) {
        let mut fleet = copred_fleet::FleetBackend::start(2).expect("start fleet");
        let r = copred_replay::run_replay(&log, &mut fleet, &opts).expect("fleet replay");
        throughput.push(r.checks_per_sec());
        if rep == 0 {
            cdqs_issued = r.cdqs_issued;
            checks = r.checks;
            matches_single = r.responses == single_run.responses;
        }
    }
    out.push(BenchRecord::deterministic(
        "fleet",
        "fleet_cdqs_issued",
        cdqs_issued as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "fleet",
        "fleet_checks",
        checks as f64,
        "checks",
        Better::Higher,
    ));
    out.push(BenchRecord::deterministic(
        "fleet",
        "fleet_matches_single",
        f64::from(matches_single),
        "bool",
        Better::Higher,
    ));
    out.push(BenchRecord::timing(
        "fleet",
        "fleet_checks_per_s",
        &throughput,
        "checks_per_s",
        Better::Higher,
    ));
}

/// Store suite: the persistence payoff — one fingerprinted planner
/// workload replayed twice against a store-enabled loopback server. The
/// first (cold) pass learns and persists each session's CHT on close; the
/// second (warm) pass reopens the same fingerprints and must issue fewer
/// CDQs. Single connection so sessions run one at a time and both passes
/// are deterministic.
fn store_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    let combo = Combo {
        algo: Algo::Mpnet,
        robot: RobotKind::Planar2d,
    };
    let pairs = planner_traces_with_scenes(&combo, &cfg.planner_scale(), cfg.seed);
    let robot = combo.robot.robot();
    let fingerprints: Vec<u64> = pairs
        .iter()
        .map(|(_t, env)| copred_store::environment_fingerprint(&robot, env))
        .collect();
    let traces: Vec<QueryTrace> = pairs.into_iter().map(|(t, _env)| t).collect();

    // A fresh directory per call: `run_suites` may run twice in-process
    // (the determinism test), and warm state leaking between calls would
    // change the "cold" pass.
    static STORE_DIR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "copred-bench-store-{}-{}",
        std::process::id(),
        STORE_DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("start store-enabled server");
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1,
        mode: SchedMode::Coord,
        seed: cfg.seed,
        pacing: Pacing::Closed,
        batch: 8,
        fingerprints: Some(fingerprints),
        ..LoadgenConfig::default()
    };
    let cold = run_loadgen(&lg, &traces).expect("cold replay");
    let warm = run_loadgen(&lg, &traces).expect("warm replay");
    assert_eq!(cold.warm_opens, 0, "first pass must start cold");
    assert_eq!(
        warm.warm_opens,
        traces.len() as u64,
        "second pass must warm-start every session"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    out.push(BenchRecord::deterministic(
        "store",
        "warm_cold_cdqs",
        cold.cdqs_issued as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "store",
        "warm_warm_cdqs",
        warm.cdqs_issued as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "store",
        "warm_cdq_reduction",
        1.0 - warm.cdqs_issued as f64 / cold.cdqs_issued.max(1) as f64,
        "fraction",
        Better::Higher,
    ));
}

/// Accel suite: cycle-level simulation of the baseline accelerator vs the
/// COPU configuration — cycles, CDQs, energy, perf/watt, and the busy
/// fraction from the per-cycle stall attribution.
fn accel_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    // Planner traffic, not uniform-random motions: the COPU design point is
    // correlated, collision-heavy CDQ streams (same workload family as
    // Fig. 15, paper CDU count).
    let combo = Combo {
        algo: Algo::Mpnet,
        robot: RobotKind::Planar2d,
    };
    let traces = planner_traces(&combo, &cfg.planner_scale(), cfg.seed.wrapping_add(1));
    let robot = combo.robot.robot();
    let em = EnergyModel::default();
    let am = AreaModel::default();
    // §VI-B2 performance CHT (1-bit counters, most-aggressive strategy,
    // U = 0) — the configuration the paper's speedup numbers use; sized for
    // the 2D C-space.
    let cht = ChtParams {
        bits: 10,
        ..ChtParams::paper_1bit()
    };

    // Per-query runs with history reset, like the figure harnesses: the
    // paper measures per-query latency, and the CHT must not carry state
    // across planning queries.
    let mut base = AccelSim::new(AccelConfig::baseline(7), CoordHash::paper_default(&robot));
    let mut copu = AccelSim::new(AccelConfig::copu(7, cht), CoordHash::paper_default(&robot));
    let mut obs = AccelObserver::new();
    let mut rb = AccelRunResult::default();
    let mut rc = AccelRunResult::default();
    for t in &traces {
        base.reset_query();
        let r = base.run_query(&t.motions);
        rb.motions += r.motions;
        rb.colliding_motions += r.colliding_motions;
        rb.total_cycles += r.total_cycles;
        rb.events.merge(&r.events);

        copu.reset_query();
        let r = copu.run_query_observed(&t.motions, &mut obs);
        rc.motions += r.motions;
        rc.colliding_motions += r.colliding_motions;
        rc.total_cycles += r.total_cycles;
        rc.events.merge(&r.events);
    }
    let pb = perf_report(&base, &rb, &em, &am);
    let pc = perf_report(&copu, &rc, &em, &am);

    out.push(BenchRecord::deterministic(
        "accel",
        "baseline_cycles",
        rb.total_cycles as f64,
        "cycles",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_cycles",
        rc.total_cycles as f64,
        "cycles",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_speedup",
        rb.total_cycles as f64 / rc.total_cycles.max(1) as f64,
        "ratio",
        Better::Higher,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_cdqs",
        rc.cdqs_executed() as f64,
        "cdqs",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_energy_pj",
        pc.energy_pj,
        "pj",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_perf_per_watt",
        pc.perf_per_watt,
        "checks_per_mcycle_per_w",
        Better::Higher,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_perf_per_watt_vs_baseline",
        pc.perf_per_watt / pb.perf_per_watt.max(f64::MIN_POSITIVE),
        "ratio",
        Better::Higher,
    ));
    out.push(BenchRecord::deterministic(
        "accel",
        "copu_busy_frac",
        obs.stalls.busy as f64 / obs.stalls.total().max(1) as f64,
        "fraction",
        Better::Higher,
    ));
}

/// Profile suite: `copred-profile` coverage both ways. The virtual-clock
/// records fold the accel simulator's per-cycle stall attribution through
/// [`copred_accel::stall_profile`] — fully deterministic under the fixed
/// seed, so the quick baseline pins the bucket→stage mapping and the
/// simulated utilization split. The wall-clock records replay the
/// committed service workload against an in-process server with its
/// sampler running and report what the sampler saw; they are timing kind
/// because sample counts move with the host. (Higher-is-better on the
/// sampler records keeps a fast machine's sparse profile from tripping
/// the gate — only losing the records entirely regresses.)
fn profile_suite(cfg: &PerfwatchConfig, out: &mut Vec<BenchRecord>) {
    // Virtual clock: one seeded COPU run, stall cycles → stage paths.
    let (robot, _env, motions) = sim_workload(cfg.sim_motions(), cfg.seed.wrapping_add(2));
    let mut sim = AccelSim::new(
        AccelConfig::copu(4, ChtParams::paper_2d()),
        CoordHash::paper_default(&robot),
    );
    let mut obs = AccelObserver::new();
    let _ = sim.run_query_observed(&motions, &mut obs);
    let vclock = stall_profile(&obs.stalls);
    let snap = vclock.snapshot();
    let busy = snap
        .stage_fractions
        .iter()
        .find(|(s, _)| *s == "execute")
        .map_or(0.0, |&(_, f)| f);
    out.push(BenchRecord::deterministic(
        "profile",
        "accel_vclock_cycles",
        vclock.samples() as f64,
        "cycles",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "profile",
        "accel_vclock_busy_frac",
        busy,
        "fraction",
        Better::Higher,
    ));
    out.push(BenchRecord::deterministic(
        "profile",
        "accel_vclock_queue_wait_frac",
        snap.queue_wait_fraction,
        "fraction",
        Better::Lower,
    ));
    out.push(BenchRecord::deterministic(
        "profile",
        "accel_vclock_paths",
        vclock.folded().lines().count() as f64,
        "paths",
        Better::Higher,
    ));

    // Wall clock: the sampled profile of the committed service workload,
    // read back through the server's own wiring (`Server::profile`).
    let log = copred_replay::read_log(SERVICE_QUICK_LOG).expect("committed service log parses");
    let mut samples_per_rep = Vec::new();
    let mut busy_per_rep = Vec::new();
    for _ in 0..cfg.reps.max(1) {
        let mut backend = copred_replay::LoopbackBackend::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .expect("start loopback server");
        let opts = copred_replay::ReplayOptions {
            mode: copred_replay::ReplayMode::Sequential,
            compare: false,
            trace_seed: None,
        };
        let _ = copred_replay::run_replay(&log, &mut backend, &opts).expect("loopback replay");
        let profile = backend.server().expect("owned server").profile();
        samples_per_rep.push(profile.samples() as f64);
        let non_idle: f64 = profile
            .snapshot()
            .stage_fractions
            .iter()
            .map(|(_, f)| f)
            .sum();
        busy_per_rep.push(non_idle);
    }
    out.push(BenchRecord::timing(
        "profile",
        "service_sampler_samples",
        &samples_per_rep,
        "samples",
        Better::Higher,
    ));
    out.push(BenchRecord::timing(
        "profile",
        "service_sampler_busy_frac",
        &busy_per_rep,
        "fraction",
        Better::Higher,
    ));
}

/// The accel deep-observability artifacts for one seeded COPU run: the
/// `copred_accel_*` Prometheus page, the per-component energy table, the
/// stall-attribution table, and the simulated-time Chrome trace JSON.
pub fn accel_observability(cfg: &PerfwatchConfig) -> (String, String, String) {
    let (robot, _env, motions) = sim_workload(cfg.sim_motions(), cfg.seed.wrapping_add(1));
    let em = EnergyModel::default();
    let am = AreaModel::default();
    let cht = ChtParams::paper_2d();
    let mut sim = AccelSim::new(AccelConfig::copu(4, cht), CoordHash::paper_default(&robot));
    let mut obs = AccelObserver::with_trace(4);
    let r = sim.run_query_observed(&motions, &mut obs);
    let area = sim.area_mm2(&am, &em);
    let bd = r.energy_breakdown(&em, area, &cht);

    let energy_rows: Vec<Vec<String>> = bd
        .rows()
        .iter()
        .map(|(c, pj)| {
            vec![
                c.to_string(),
                crate::table::num(*pj, 1),
                crate::table::pct(pj / bd.total_pj().max(f64::MIN_POSITIVE)),
            ]
        })
        .collect();
    let energy_table = crate::table::render_table(
        "accel energy breakdown (COPU.4)",
        &["component", "pj", "share"],
        &energy_rows,
    );
    let stall_rows: Vec<Vec<String>> = obs
        .stalls
        .rows()
        .iter()
        .map(|(reason, cycles)| {
            vec![
                reason.to_string(),
                cycles.to_string(),
                crate::table::pct(*cycles as f64 / obs.stalls.total().max(1) as f64),
            ]
        })
        .collect();
    let stall_table = crate::table::render_table(
        "accel stall attribution (COPU.4)",
        &["reason", "cycles", "share"],
        &stall_rows,
    );
    let prom = accel_prom_page(&r, &obs.stalls, &bd);
    let trace_json = obs.trace().expect("trace enabled").to_chrome_json();
    (format!("{energy_table}\n{stall_table}"), prom, trace_json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_obs::MetricKind;

    fn tiny() -> PerfwatchConfig {
        PerfwatchConfig {
            label: "tiny".to_string(),
            seed: 7,
            reps: 1,
            quick: true,
        }
    }

    #[test]
    fn suite_covers_all_subsystems() {
        let report = run_suites(&tiny());
        for suite in [
            "schedule",
            "swexec",
            "swexec_batch",
            "service",
            "fleet",
            "store",
            "accel",
            "profile",
        ] {
            assert!(
                report.records.iter().any(|r| r.suite == suite),
                "missing suite {suite}"
            );
        }
        // The persistence payoff the suite gates on: a warm session must
        // issue strictly fewer CDQs than the cold pass on this colliding
        // planner workload.
        let reduction = report
            .record("store", "warm_cdq_reduction")
            .expect("store suite emits warm_cdq_reduction")
            .value;
        assert!(
            reduction > 0.0,
            "warm pass did not reduce CDQs: {reduction}"
        );
        // The batched hot path must reproduce the scalar replay exactly.
        let matches = report
            .record("swexec_batch", "batch_matches_scalar")
            .expect("swexec_batch suite emits batch_matches_scalar")
            .value;
        assert_eq!(matches, 1.0, "batched replay diverged from scalar");
        // The sharded fleet must answer the committed workload exactly
        // like one node.
        let fleet_matches = report
            .record("fleet", "fleet_matches_single")
            .expect("fleet suite emits fleet_matches_single")
            .value;
        assert_eq!(fleet_matches, 1.0, "fleet replay diverged from single node");
        // Metric names are unique within a suite.
        let mut keys: Vec<(String, String)> = report
            .records
            .iter()
            .map(|r| (r.suite.clone(), r.metric.clone()))
            .collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate suite/metric");
    }

    #[test]
    fn deterministic_metrics_reproduce_across_runs() {
        let a = run_suites(&tiny());
        let b = run_suites(&tiny());
        for ra in a
            .records
            .iter()
            .filter(|r| r.kind == MetricKind::Deterministic)
        {
            let rb = b
                .record(&ra.suite, &ra.metric)
                .unwrap_or_else(|| panic!("missing {}/{}", ra.suite, ra.metric));
            assert!(
                ra.value.to_bits() == rb.value.to_bits(),
                "{}/{} not reproducible: {} vs {}",
                ra.suite,
                ra.metric,
                ra.value,
                rb.value
            );
        }
    }

    #[test]
    fn sampled_service_profile_fractions_are_normalized() {
        // Acceptance criterion: on a replay of the committed service
        // workload with a sampler running, per-thread stage fractions sum
        // to ≤ 1.0 (idle is in the denominator) and every sampled frame
        // is a known stage label. A dedicated fast sampler (rather than
        // the server's ~1ms one) keeps this deterministic-ish on fast
        // hosts; a few retries absorb the rest.
        let log = copred_replay::read_log(SERVICE_QUICK_LOG).expect("log parses");
        let opts = copred_replay::ReplayOptions {
            mode: copred_replay::ReplayMode::Sequential,
            compare: false,
            trace_seed: None,
        };
        let mut profile = copred_obs::Profile::default();
        for _ in 0..10 {
            let sampler = copred_obs::Sampler::start(std::time::Duration::from_micros(50));
            let mut backend = copred_replay::LoopbackBackend::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            })
            .expect("start loopback server");
            copred_replay::run_replay(&log, &mut backend, &opts).expect("replay");
            drop(backend);
            profile = sampler.stop();
            if profile.samples() > 0 && !profile.folded().is_empty() {
                break;
            }
        }
        assert!(profile.samples() > 0, "sampler never ticked");
        assert!(
            !profile.folded().is_empty(),
            "no non-idle stage paths sampled during a whole service replay"
        );
        for (tid, _total, rows) in profile.thread_fractions() {
            let sum: f64 = rows.iter().map(|(_, f)| f).sum();
            assert!(sum <= 1.0 + 1e-9, "thread {tid} fractions sum to {sum}");
        }
        for line in profile.folded().lines() {
            let path = line.rsplit_once(' ').expect("folded line shape").0;
            for frame in path.split(';') {
                assert!(
                    copred_obs::Stage::ALL.iter().any(|s| s.label() == frame),
                    "unknown frame {frame:?}"
                );
            }
        }
    }

    #[test]
    fn accel_observability_artifacts_are_consistent() {
        let (tables, prom, trace) = accel_observability(&tiny());
        assert!(tables.contains("accel energy breakdown"));
        assert!(tables.contains("accel stall attribution"));
        let samples = copred_obs::parse_prometheus(&prom).expect("prom page parses");
        assert!(samples.iter().all(|s| s.name.starts_with("copred_accel_")));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("cdu0"));
    }
}
