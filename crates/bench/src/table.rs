//! Plain-text table formatting for the figure harnesses.

use std::fmt::Write as _;

/// Renders a fixed-width table with a title line.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    writeln!(out, "== {title}").unwrap();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        write!(line, "{h:>w$}  ", w = w).unwrap();
    }
    writeln!(out, "{}", line.trim_end()).unwrap();
    writeln!(out, "{}", "-".repeat(line.trim_end().len())).unwrap();
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            write!(line, "{c:>w$}  ", w = w).unwrap();
        }
        writeln!(out, "{}", line.trim_end()).unwrap();
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a float with `d` decimals.
pub fn num(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            "demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("== demo"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column alignment: both value cells end at the same offset.
        assert!(lines[3].ends_with('1'));
        assert!(lines[4].ends_with("22"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.253), "25.3%");
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(num(1.23456, 2), "1.23");
    }
}
