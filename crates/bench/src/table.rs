//! Plain-text table formatting for the figure harnesses.

use std::fmt::Write as _;

/// Renders a fixed-width table with a title line.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    writeln!(out, "== {title}").unwrap();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        write!(line, "{h:>w$}  ", w = w).unwrap();
    }
    writeln!(out, "{}", line.trim_end()).unwrap();
    writeln!(out, "{}", "-".repeat(line.trim_end().len())).unwrap();
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            write!(line, "{c:>w$}  ", w = w).unwrap();
        }
        writeln!(out, "{}", line.trim_end()).unwrap();
    }
    out
}

/// A table recovered from [`render_table`] output by [`parse_tables`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTable {
    /// The `== title` line, without the marker.
    pub title: String,
    /// Header cells.
    pub headers: Vec<String>,
    /// Data rows (cells, left to right).
    pub rows: Vec<Vec<String>>,
}

/// Parses every [`render_table`]-formatted table out of a text blob,
/// ignoring prose around them. Cells are recovered by splitting on runs of
/// two or more spaces — the renderer always separates columns by at least
/// two, and cell contents only ever contain single spaces.
pub fn parse_tables(text: &str) -> Vec<ParsedTable> {
    let split = |line: &str| -> Vec<String> {
        let mut cells = Vec::new();
        let mut cur = String::new();
        let mut spaces = 0usize;
        for c in line.trim().chars() {
            if c == ' ' {
                spaces += 1;
            } else {
                if spaces >= 2 && !cur.is_empty() {
                    cells.push(std::mem::take(&mut cur));
                } else if spaces > 0 && !cur.is_empty() {
                    cur.push(' ');
                }
                spaces = 0;
                cur.push(c);
            }
        }
        if !cur.is_empty() {
            cells.push(cur);
        }
        cells
    };
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let Some(title) = line.strip_prefix("== ") else {
            continue;
        };
        let Some(header_line) = lines.next() else {
            break;
        };
        let headers = split(header_line);
        // The dash rule confirms this really is a rendered table.
        let Some(rule) = lines.peek() else { break };
        if rule.is_empty() || !rule.chars().all(|c| c == '-') {
            continue;
        }
        lines.next();
        let mut rows = Vec::new();
        while let Some(&row) = lines.peek() {
            if row.trim().is_empty() || row.starts_with("== ") {
                break;
            }
            rows.push(split(row));
            lines.next();
        }
        out.push(ParsedTable {
            title: title.to_string(),
            headers,
            rows,
        });
    }
    out
}

/// Renders parsed tables as flat JSON rows — one object per data cell:
/// `{"table", "row_index", "row_key", "column", "text", "value"}` where
/// `value` is the numeric reading of the cell (percentages as fractions,
/// `N.NNx` ratios as plain numbers) or `null` for non-numeric cells. This
/// is how figure output joins the machine-readable benchmark trajectory.
pub fn tables_json(tables: &[ParsedTable]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for t in tables {
        for (ri, row) in t.rows.iter().enumerate() {
            let row_key = row.first().map(String::as_str).unwrap_or("");
            for (ci, cell) in row.iter().enumerate() {
                let column = t.headers.get(ci).map(String::as_str).unwrap_or("");
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let value = match cell_value(cell) {
                    Some(v) => fmt_json_num(v),
                    None => "null".to_string(),
                };
                write!(
                    out,
                    "  {{\"table\": \"{}\", \"row_index\": {ri}, \"row_key\": \"{}\", \
                     \"column\": \"{}\", \"text\": \"{}\", \"value\": {value}}}",
                    esc(&t.title),
                    esc(row_key),
                    esc(column),
                    esc(cell)
                )
                .unwrap();
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Numeric reading of a rendered cell: plain numbers, `12.3%` percentages
/// (returned as fractions), and `1.23x` ratios.
fn cell_value(cell: &str) -> Option<f64> {
    if let Some(p) = cell.strip_suffix('%') {
        return p.parse::<f64>().ok().map(|v| v / 100.0);
    }
    if let Some(r) = cell.strip_suffix('x') {
        if let Ok(v) = r.parse::<f64>() {
            return Some(v);
        }
    }
    cell.parse::<f64>().ok()
}

fn fmt_json_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a float with `d` decimals.
pub fn num(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            "demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("== demo"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column alignment: both value cells end at the same offset.
        assert!(lines[3].ends_with('1'));
        assert!(lines[4].ends_with("22"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.253), "25.3%");
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(num(1.23456, 2), "1.23");
    }

    #[test]
    fn parse_tables_round_trips_rendered_output() {
        let rendered = format!(
            "prose before\n{}\nprose between\n{}",
            render_table(
                "one",
                &["combo", "cdqs saved", "ratio"],
                &[
                    vec!["MPNet-Baxter".into(), "41.2%".into(), "1.96x".into()],
                    vec!["BIT*-2D".into(), "7.0%".into(), "1.01x".into()],
                ],
            ),
            render_table("two", &["k", "v"], &[vec!["a b".into(), "3".into()]]),
        );
        let tables = parse_tables(&rendered);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].title, "one");
        assert_eq!(tables[0].headers, ["combo", "cdqs saved", "ratio"]);
        assert_eq!(
            tables[0].rows[0],
            ["MPNet-Baxter", "41.2%", "1.96x"],
            "cells with single internal spaces survive"
        );
        assert_eq!(tables[1].rows[0], ["a b", "3"]);
    }

    #[test]
    fn tables_json_emits_one_object_per_cell() {
        let t = parse_tables(&render_table(
            "demo",
            &["name", "saved"],
            &[vec!["x".into(), "25.0%".into()]],
        ));
        let json = tables_json(&t);
        assert!(json.contains("\"table\": \"demo\""));
        assert!(json.contains("\"row_key\": \"x\""));
        assert!(json.contains("\"column\": \"saved\""));
        // Percentage parsed to a fraction; name cell is null-valued.
        assert!(json.contains("\"text\": \"25.0%\", \"value\": 0.25"));
        assert!(json.contains("\"text\": \"x\", \"value\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn cell_values_parse_common_formats() {
        assert_eq!(cell_value("41.2%"), Some(41.2 / 100.0));
        assert_eq!(cell_value("1.96x"), Some(1.96));
        assert_eq!(cell_value("123"), Some(123.0));
        assert_eq!(cell_value("-0.5"), Some(-0.5));
        assert_eq!(cell_value("MPNet-Baxter"), None);
        assert_eq!(cell_value("1.2% / 3.4%"), None);
    }
}
