//! Runs the copred collision-prediction service until killed.
//!
//! ```text
//! copred_server [key=value ...]
//!   addr=127.0.0.1:7457   bind address (port 0 = OS-assigned)
//!   workers=4             worker threads
//!   queue=128             global queue capacity (batches)
//!   session_queue=32      per-session pending cap
//!   max_sessions=64       session pool size (power of two)
//!   csp_step=5            CSP stride for the schedulers
//!   retry_ms=10           back-off hint in retry_after responses
//!   metrics_addr=ADDR     serve Prometheus text exposition on GET /metrics
//!   store_dir=DIR         persist CHT shards under DIR and warm-start
//!                         sessions opened with a matching fingerprint
//!   trace_dump=DIR        export flight-recorder + Chrome-trace dumps
//!                         under DIR (enables span collection)
//!   flight_threshold_ms=N auto-dump the flight recorder when a check
//!                         batch exceeds N milliseconds (0 = off)
//! ```
//!
//! Keys also parse in GNU style (`--metrics-addr=127.0.0.1:9100`).

use copred_service::{Server, ServerConfig};
use std::thread;
use std::time::Duration;

/// Every key `copred_server` accepts (after GNU-style normalization);
/// unknown keys are rejected with this list so a typo never silently
/// falls back to a default.
const VALID_KEYS: &[&str] = &[
    "addr",
    "workers",
    "queue",
    "session_queue",
    "max_sessions",
    "csp_step",
    "retry_ms",
    "metrics_addr",
    "store_dir",
    "trace_dump",
    "flight_threshold_ms",
];

fn parse_args(raw: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7457".to_string(),
        ..ServerConfig::default()
    };
    for arg in raw {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{arg}'"))?;
        let key = key.trim_start_matches("--").replace('-', "_");
        let num = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("bad number for {key}: '{value}'"))
        };
        match key.as_str() {
            "addr" => cfg.addr = value.to_string(),
            "workers" => cfg.workers = num()? as usize,
            "queue" => cfg.queue_capacity = num()? as usize,
            "session_queue" => cfg.session_queue_cap = num()? as usize,
            "max_sessions" => cfg.max_sessions = num()? as usize,
            "csp_step" => cfg.csp_step = num()? as usize,
            "retry_ms" => cfg.retry_after_ms = num()?,
            "metrics_addr" => cfg.metrics_addr = Some(value.to_string()),
            "store_dir" => cfg.store_dir = Some(value.to_string()),
            "trace_dump" => cfg.trace_dump = Some(value.to_string()),
            "flight_threshold_ms" => cfg.flight_threshold_ms = num()?,
            _ => {
                return Err(format!(
                    "unknown option '{key}' (valid keys: {})",
                    VALID_KEYS.join(", ")
                ))
            }
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("copred_server: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("copred_server: bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!(
        "copred_server listening on {} ({} workers, queue {}, {} sessions)",
        server.local_addr(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.max_sessions
    );
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on http://{addr}/metrics");
    }
    if let Some(dir) = &cfg.store_dir {
        println!("persisting CHT state under {dir}");
    }
    if let Some(dir) = &cfg.trace_dump {
        println!("flight + trace dumps under {dir}");
    }
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<ServerConfig, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_key_fails_fast_and_lists_valid_keys() {
        let err = parse(&["wokers=4"]).unwrap_err();
        assert!(err.contains("unknown option 'wokers'"), "{err}");
        for key in VALID_KEYS {
            assert!(err.contains(key), "error should list {key}: {err}");
        }
    }

    #[test]
    fn known_keys_parse_in_both_styles() {
        let cfg = parse(&[
            "workers=3",
            "--csp-step=7",
            "metrics_addr=127.0.0.1:0",
            "--trace-dump=/tmp/td",
            "flight_threshold_ms=25",
        ])
        .unwrap();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.csp_step, 7);
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.trace_dump.as_deref(), Some("/tmp/td"));
        assert_eq!(cfg.flight_threshold_ms, 25);
    }

    #[test]
    fn bare_word_is_an_error() {
        let err = parse(&["workers"]).unwrap_err();
        assert!(err.contains("expected key=value"), "{err}");
    }
}
