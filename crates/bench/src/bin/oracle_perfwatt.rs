//! Regenerates the §III-A oracle performance/watt study.
fn main() {
    let mut w = copred_bench::Workloads::new(copred_bench::Scale::from_env_or_exit(), 42);
    print!("{}", copred_bench::figures::oracle_perfwatt(&mut w));
}
