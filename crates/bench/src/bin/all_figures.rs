//! Regenerates every table and figure of the paper's evaluation in one run.
use copred_bench::figures as f;

fn main() {
    let scale = copred_bench::Scale::from_env_or_exit();
    let mut w = copred_bench::Workloads::new(scale, 42);
    let sections: Vec<(&str, String)> = vec![
        ("fig1d", f::fig1d(&scale)),
        ("fig6", f::fig6(&mut w)),
        ("fig7", f::fig7(&mut w)),
        ("oracle_perfwatt", f::oracle_perfwatt(&mut w)),
        ("fig9", f::fig9(&scale)),
        ("fig13", f::fig13(&scale)),
        ("fig14", f::fig14(&scale)),
        ("ablation_adaptive_s", f::ablation_adaptive_s(&scale)),
        ("cpu (sec. III-E)", f::cpu_section(&mut w)),
        ("fig11", f::fig11(&mut w)),
        ("fig15", f::fig15(&mut w)),
        ("fig16", f::fig16(&mut w)),
        ("fig17", f::fig17(&mut w)),
        ("fig18", f::fig18(&mut w)),
        ("tab_overheads", f::tab_overheads()),
        ("sec7_spheres", f::sec7_spheres(&mut w)),
        ("sec7_dadup", f::sec7_dadup(&scale)),
    ];
    for (name, body) in sections {
        println!("######## {name} ########");
        println!("{body}");
    }
}
