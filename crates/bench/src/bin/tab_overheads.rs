//! Regenerates the §VI-B1 overhead table.
fn main() {
    print!("{}", copred_bench::figures::tab_overheads());
}
