//! Regenerates Fig. 1d.
fn main() {
    let scale = copred_bench::Scale::from_env_or_exit();
    print!("{}", copred_bench::figures::fig1d(&scale));
}
