//! Regenerates Fig. 16.
fn main() {
    let mut w = copred_bench::Workloads::new(copred_bench::Scale::from_env_or_exit(), 42);
    print!("{}", copred_bench::figures::fig16(&mut w));
}
