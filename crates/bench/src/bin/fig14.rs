//! Regenerates Fig. 14.
fn main() {
    let scale = copred_bench::Scale::from_env();
    print!("{}", copred_bench::figures::fig14(&scale));
}
