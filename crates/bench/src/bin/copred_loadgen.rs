//! Load generator: replays captured planner workloads against a running
//! `copred_server` and writes an s3-bench-style TSV op-log.
//!
//! ```text
//! copred_loadgen [key=value ...]
//!   addr=127.0.0.1:7457   server address
//!   combo=MPNet-Baxter    workload (a Fig. 15 combo label)
//!   queries=8             planning queries (sessions) to capture and replay
//!   connections=8         concurrent client connections
//!   mode=coord            coord | naive | csp
//!   pacing=closed         closed | open:<interval_us>
//!   batch=8               motions per CHECK_MOTION frame
//!   seed=42               capture + replay seed (deterministic)
//!   oplog=oplog.tsv       op-log output path ("-" to skip)
//! ```

use copred_bench::{Combo, Scale};
use copred_service::protocol::SchedMode;
use copred_service::{run_loadgen, write_oplog, LoadgenConfig, Pacing};

struct Args {
    combo: Combo,
    queries: usize,
    seed: u64,
    oplog: String,
    lg: LoadgenConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        combo: Combo::paper_six()[0], // MPNet-Baxter
        queries: 8,
        seed: 42,
        oplog: "oplog.tsv".to_string(),
        lg: LoadgenConfig::default(),
    };
    for arg in std::env::args().skip(1) {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{arg}'"))?;
        let num = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("bad number for {key}: '{value}'"))
        };
        match key {
            "addr" => args.lg.addr = value.to_string(),
            "combo" => {
                args.combo = Combo::paper_six()
                    .into_iter()
                    .find(|c| c.label() == value)
                    .ok_or_else(|| {
                        let known: Vec<String> =
                            Combo::paper_six().iter().map(Combo::label).collect();
                        format!("unknown combo '{value}', one of: {}", known.join(", "))
                    })?;
            }
            "queries" => args.queries = num()? as usize,
            "connections" => args.lg.connections = num()? as usize,
            "mode" => {
                args.lg.mode = SchedMode::parse(value)
                    .ok_or_else(|| format!("bad mode '{value}' (coord|naive|csp)"))?;
            }
            "pacing" => {
                args.lg.pacing = match value.split_once(':') {
                    None if value == "closed" => Pacing::Closed,
                    Some(("open", us)) => Pacing::Open {
                        interval_us: us
                            .parse()
                            .map_err(|_| format!("bad open-loop interval '{us}'"))?,
                    },
                    _ => return Err(format!("bad pacing '{value}' (closed|open:<us>)")),
                };
            }
            "batch" => args.lg.batch = num()? as usize,
            "seed" => {
                args.seed = num()?;
                args.lg.seed = args.seed;
            }
            "oplog" => args.oplog = value.to_string(),
            _ => return Err(format!("unknown option '{key}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("copred_loadgen: {e}");
            std::process::exit(2);
        }
    };
    let scale = Scale {
        queries: args.queries,
        ..Scale::quick()
    };
    eprintln!(
        "capturing {} {} queries (seed {})...",
        args.queries,
        args.combo.label(),
        args.seed
    );
    let traces = copred_bench::workloads::planner_traces(&args.combo, &scale, args.seed);
    let motions: usize = traces.iter().map(|t| t.motions.len()).sum();
    eprintln!(
        "replaying {} traces / {} motions over {} connections ({:?}, mode {})...",
        traces.len(),
        motions,
        args.lg.connections,
        args.lg.pacing,
        args.lg.mode.label()
    );
    let report = match run_loadgen(&args.lg, &traces) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("copred_loadgen: {e}");
            std::process::exit(1);
        }
    };
    println!("workload      {}", args.combo.label());
    println!("mode          {}", args.lg.mode.label());
    println!("checks        {}", report.checks);
    println!("collisions    {}", report.collisions);
    println!("cdqs_issued   {}", report.cdqs_issued);
    println!("cdqs_total    {}", report.cdqs_total);
    println!(
        "cdqs_saved    {} ({:.1}%)",
        report.cdqs_total - report.cdqs_issued,
        100.0 * (report.cdqs_total - report.cdqs_issued) as f64 / report.cdqs_total.max(1) as f64
    );
    println!("retries       {}", report.retries);
    println!("wall_s        {:.3}", report.wall_ns as f64 / 1e9);
    println!("checks_per_s  {:.1}", report.checks_per_sec());
    if args.oplog != "-" {
        if let Err(e) = std::fs::write(&args.oplog, write_oplog(&report.ops)) {
            eprintln!("copred_loadgen: writing {}: {e}", args.oplog);
            std::process::exit(1);
        }
        println!("oplog         {} ({} ops)", args.oplog, report.ops.len());
    }
}
