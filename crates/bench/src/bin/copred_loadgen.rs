//! Load generator: replays captured planner workloads against a running
//! `copred_server` and records the run as a CPRDLOG op-log — the
//! versioned record/replay interchange format (`copred_replay` drives
//! the same log back against any backend).
//!
//! ```text
//! copred_loadgen [key=value ...]
//!   addr=127.0.0.1:7457   server address
//!   combo=MPNet-Baxter    workload (a Fig. 15 combo label)
//!   queries=8             planning queries (sessions) to capture and replay
//!   connections=8         concurrent client connections
//!   mode=coord            coord | naive | csp
//!   pacing=closed         closed | open:<interval_us>
//!   batch=8               motions per CHECK_MOTION frame
//!   seed=42               capture + replay seed (deterministic)
//!   oplog=oplog.cprlog    CPRDLOG op-log output path ("-" to skip)
//!   tsv=oplog.tsv         also export the op-log as the legacy
//!                         self-describing TSV
//!   metrics_interval=1    sample global stats every N seconds into a
//!                         sidecar TSV next to the op-log
//!   bench_json=bench.json also write the run summary as a perfwatch
//!                         BENCH-schema JSON report (see `copred_bench`)
//!   traceids=1            attach wire trace ids to check batches
//!                         (default on; traceids=0 turns them off)
//!   inproc=1              start the server in this process (addr ignored)
//!   trace=trace.json      write a Chrome trace of the run (implies inproc)
//!   ab=1                  A/B the observability overhead: replay twice
//!                         (obs + profiler sampler off, both on) and
//!                         report p50/p95/p99 deltas (implies inproc)
//!   ab_budget=5           with ab=1: exit 1 when the median per-rep
//!                         p99 overhead exceeds this percentage in all
//!                         of up to 3 rounds (the CI gate)
//!   profile=out.folded    write the server's sampled stage profile as
//!                         flamegraph-compatible folded stacks after the
//!                         run (implies inproc)
//!   warm=1                replay the workload twice against one
//!                         store-enabled server — cold then warm — and
//!                         report both runs (implies inproc; both land in
//!                         bench_json= when set; the op-log records the
//!                         warm pass)
//!   store_dir=DIR         store directory for warm=1 (default: a scratch
//!                         directory wiped at start)
//! ```

use copred_bench::{Combo, Scale};
use copred_replay::{LogMeta, LogRecord, LogWriter};
use copred_service::protocol::SchedMode;
use copred_service::{
    run_loadgen, write_oplog, write_stats_tsv, LoadgenConfig, LoadgenReport, OpRecord, Pacing,
    Server, ServerConfig,
};
use copred_trace::QueryTrace;
use std::time::Duration;

/// Every key `copred_loadgen` accepts; unknown keys are rejected with
/// this list so a typo never silently no-ops.
const VALID_FLAGS: &[&str] = &[
    "addr",
    "combo",
    "queries",
    "connections",
    "mode",
    "pacing",
    "batch",
    "seed",
    "oplog",
    "tsv",
    "bench_json",
    "metrics_interval",
    "traceids",
    "trace",
    "inproc",
    "ab",
    "ab_budget",
    "warm",
    "store_dir",
    "profile",
];

struct Args {
    combo: Combo,
    queries: usize,
    seed: u64,
    oplog: String,
    tsv: Option<String>,
    bench_json: Option<String>,
    trace: Option<String>,
    inproc: bool,
    ab: bool,
    ab_budget: Option<f64>,
    warm: bool,
    store_dir: Option<String>,
    profile: Option<String>,
    lg: LoadgenConfig,
}

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

/// The testable core of [`parse_args`]: parses an explicit argument
/// list, rejecting unknown keys with the full [`VALID_FLAGS`] list.
fn parse_args_from(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        combo: Combo::paper_six()[0], // MPNet-Baxter
        queries: 8,
        seed: 42,
        oplog: "oplog.cprlog".to_string(),
        tsv: None,
        bench_json: None,
        trace: None,
        inproc: false,
        ab: false,
        ab_budget: None,
        warm: false,
        store_dir: None,
        profile: None,
        lg: LoadgenConfig {
            trace_ids: true,
            ..LoadgenConfig::default()
        },
    };
    for arg in argv {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{arg}'"))?;
        let num = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("bad number for {key}: '{value}'"))
        };
        match key {
            "addr" => args.lg.addr = value.to_string(),
            "combo" => {
                args.combo = Combo::paper_six()
                    .into_iter()
                    .find(|c| c.label() == value)
                    .ok_or_else(|| {
                        let known: Vec<String> =
                            Combo::paper_six().iter().map(Combo::label).collect();
                        format!("unknown combo '{value}', one of: {}", known.join(", "))
                    })?;
            }
            "queries" => args.queries = num()? as usize,
            "connections" => args.lg.connections = num()? as usize,
            "mode" => {
                args.lg.mode = SchedMode::parse(value)
                    .ok_or_else(|| format!("bad mode '{value}' (coord|naive|csp)"))?;
            }
            "pacing" => {
                args.lg.pacing = match value.split_once(':') {
                    None if value == "closed" => Pacing::Closed,
                    Some(("open", us)) => Pacing::Open {
                        interval_us: us
                            .parse()
                            .map_err(|_| format!("bad open-loop interval '{us}'"))?,
                    },
                    _ => return Err(format!("bad pacing '{value}' (closed|open:<us>)")),
                };
            }
            "batch" => args.lg.batch = num()? as usize,
            "seed" => {
                args.seed = num()?;
                args.lg.seed = args.seed;
            }
            "oplog" => args.oplog = value.to_string(),
            "tsv" => args.tsv = Some(value.to_string()),
            "bench_json" => args.bench_json = Some(value.to_string()),
            "metrics_interval" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|_| format!("bad metrics interval '{value}'"))?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err(format!("metrics interval must be positive, got '{value}'"));
                }
                args.lg.metrics_interval = Some(Duration::from_secs_f64(secs));
            }
            "traceids" => args.lg.trace_ids = value == "1" || value == "true",
            "trace" => args.trace = Some(value.to_string()),
            "inproc" => args.inproc = value == "1" || value == "true",
            "ab" => args.ab = value == "1" || value == "true",
            "ab_budget" => {
                let pct: f64 = value
                    .parse()
                    .map_err(|_| format!("bad ab_budget '{value}'"))?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err(format!(
                        "ab_budget must be a positive percentage, got '{value}'"
                    ));
                }
                args.ab_budget = Some(pct);
            }
            "warm" => args.warm = value == "1" || value == "true",
            "store_dir" => args.store_dir = Some(value.to_string()),
            "profile" => args.profile = Some(value.to_string()),
            _ => {
                return Err(format!(
                    "unknown option '{key}' (valid flags: {})",
                    VALID_FLAGS.join(", ")
                ))
            }
        }
    }
    // Worker-side spans only reach this process's recorder when the server
    // runs in-process, the A/B needs a fresh server per arm, the warm
    // replay needs a server whose store it controls, and the profile
    // export reads the in-process server's sampler.
    if args.trace.is_some() || args.ab || args.warm || args.profile.is_some() {
        args.inproc = true;
    }
    if args.ab_budget.is_some() && !args.ab {
        return Err("ab_budget requires ab=1".to_string());
    }
    // Stream the sidecar stats TSV during the run (atomic tmp+rename per
    // snapshot) so a killed run still leaves a parseable partial file.
    if args.lg.metrics_interval.is_some() && args.oplog != "-" {
        args.lg.stats_tsv = Some(stats_path(&args.oplog));
    }
    Ok(args)
}

/// Quantile of a sorted slice by nearest-rank; 0 when empty.
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Sorted per-batch `check_motion` latencies from a run's op-log.
fn check_latencies(report: &LoadgenReport) -> Vec<u64> {
    let mut ns: Vec<u64> = report
        .ops
        .iter()
        .filter(|op| op.verb == "check_motion")
        .map(|op| op.duration_ns)
        .collect();
    ns.sort_unstable();
    ns
}

/// Runs the workload against a fresh in-process server (or the configured
/// remote address when `inproc` is off). Returns the run report plus the
/// server's sampled stage profile (empty against a remote server, whose
/// sampler this process cannot read).
fn run_arm(
    args: &Args,
    traces: &[QueryTrace],
    trace_ids: bool,
    sampler_on: bool,
) -> std::io::Result<(LoadgenReport, copred_obs::Profile)> {
    let mut lg = args.lg.clone();
    lg.trace_ids = trace_ids;
    if args.inproc {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            profile_sampler: sampler_on,
            ..ServerConfig::default()
        })?;
        lg.addr = server.local_addr().to_string();
        let report = run_loadgen(&lg, traces)?;
        Ok((report, server.profile()))
    } else {
        Ok((run_loadgen(&lg, traces)?, copred_obs::Profile::default()))
    }
}

/// Replays the workload twice against one in-process server with
/// persistence enabled: the first pass starts cold and persists each
/// session's CHT on close, the second warm-starts from the store.
fn run_warm(args: &Args, traces: &[QueryTrace]) -> std::io::Result<(LoadgenReport, LoadgenReport)> {
    let dir = match &args.store_dir {
        Some(d) => d.clone(),
        None => {
            let d = std::env::temp_dir().join(format!("copred-loadgen-store-{}", args.seed));
            // A scratch store must really start cold.
            let _ = std::fs::remove_dir_all(&d);
            d.to_string_lossy().into_owned()
        }
    };
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })?;
    eprintln!("store         {dir}");
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        ..args.lg.clone()
    };
    let cold = run_loadgen(&lg, traces)?;
    let warm = run_loadgen(&lg, traces)?;
    Ok((cold, warm))
}

/// Replays the workload repeatedly with observability off and on —
/// alternating arm order to cancel warmup/drift, fresh in-process server
/// One full alternating A/B round: `REPS` off/on replay pairs. Prints
/// the pooled-quantile table and returns the median of the per-rep p99
/// overhead percentages.
fn ab_round(args: &Args, traces: &[QueryTrace]) -> std::io::Result<f64> {
    const REPS: usize = 5;
    let mut off_ns = Vec::new();
    let mut on_ns = Vec::new();
    let mut rep_p99_pcts = Vec::new();
    let mut events = 0usize;
    let mut samples = 0u64;
    for rep in 0..REPS {
        let mut rep_p99 = [0u64; 2];
        // a/b on even reps, b/a on odd: drift hits both arms equally.
        for pass in 0..2 {
            let enabled = (rep + pass) % 2 == 1;
            if enabled {
                copred_obs::enable();
            } else {
                copred_obs::disable();
            }
            // The on arm carries wire trace ids (exemplars + flight
            // stamps active) plus the stage sampler; the off arm is the
            // pre-observability baseline.
            let (report, profile) = run_arm(args, traces, enabled, enabled)?;
            copred_obs::disable();
            events += copred_obs::drain_events().len();
            let lat = check_latencies(&report);
            rep_p99[usize::from(enabled)] = quantile_ns(&lat, 0.99);
            let target = if enabled { &mut on_ns } else { &mut off_ns };
            target.extend(lat);
            samples += profile.samples();
        }
        if rep_p99[0] > 0 {
            rep_p99_pcts.push(100.0 * (rep_p99[1] as f64 - rep_p99[0] as f64) / rep_p99[0] as f64);
        }
    }
    off_ns.sort_unstable();
    on_ns.sort_unstable();
    println!(
        "observability A/B ({} batches per arm over {REPS}x2 alternating replays)",
        off_ns.len()
    );
    println!("quantile      obs_off_ns    obs_on_ns    overhead");
    for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let (a, b) = (quantile_ns(&off_ns, q), quantile_ns(&on_ns, q));
        let pct = if a == 0 {
            0.0
        } else {
            100.0 * (b as f64 - a as f64) / a as f64
        };
        println!("{label:<10} {a:>13} {b:>12}    {pct:+.2}%");
    }
    println!(
        "events        {events} recorded, {} dropped",
        copred_obs::dropped_events()
    );
    println!("samples       {samples} (profiler, on-arm)");
    // Pooled tail quantiles are hostage to whichever arm happened to run
    // during a noisy stretch of a shared machine; the budget statistic is
    // the *median* of the per-rep p99 overheads instead, so one bad
    // period corrupts one rep and the median shrugs it off.
    rep_p99_pcts.sort_by(f64::total_cmp);
    Ok(rep_p99_pcts
        .get(rep_p99_pcts.len() / 2)
        .copied()
        .unwrap_or(0.0))
}

/// Replays the workload repeatedly with observability off and on —
/// alternating arm order to cancel warmup/drift, fresh in-process server
/// per replay — and reports the latency overhead of leaving tracing and
/// the profile sampler enabled. The PR's budget is < 5% on p99; pass
/// `ab_budget=` to enforce it (exit 1). Contention noise is strictly
/// one-sided (a busy host can only inflate an arm, never deflate it), so
/// the budget check allows up to three rounds and passes on the first
/// in-budget median: a real regression fails every round, a noisy burst
/// fails one.
fn run_ab(args: &Args, traces: &[QueryTrace]) -> std::io::Result<()> {
    // Discarded warmup replay: pages in the binary, traces, and rings.
    copred_obs::enable();
    run_arm(args, traces, true, true)?;
    copred_obs::drain_events();

    let Some(budget) = args.ab_budget else {
        let median = ab_round(args, traces)?;
        println!("p99_median    {median:+.2}% per-rep");
        return Ok(());
    };
    const ROUNDS: usize = 3;
    for round in 1..=ROUNDS {
        let median = ab_round(args, traces)?;
        if median <= budget {
            println!("budget        median per-rep p99 {median:+.2}% within {budget:.2}% (round {round}/{ROUNDS})");
            return Ok(());
        }
        eprintln!(
            "copred_loadgen: round {round}/{ROUNDS}: median per-rep p99 overhead {median:+.2}% exceeds budget {budget:.2}%"
        );
    }
    eprintln!("copred_loadgen: overhead budget exceeded in all {ROUNDS} rounds");
    std::process::exit(1);
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("copred_loadgen: {e}");
            std::process::exit(2);
        }
    };
    let scale = Scale {
        queries: args.queries,
        ..Scale::quick()
    };
    eprintln!(
        "capturing {} {} queries (seed {})...",
        args.queries,
        args.combo.label(),
        args.seed
    );
    let pairs = copred_bench::workloads::planner_traces_with_scenes(&args.combo, &scale, args.seed);
    if args.warm {
        // Warm-start needs each open to carry its scene's fingerprint.
        let robot = args.combo.robot.robot();
        args.lg.fingerprints = Some(
            pairs
                .iter()
                .map(|(_t, env)| copred_store::environment_fingerprint(&robot, env))
                .collect(),
        );
    }
    let traces: Vec<QueryTrace> = pairs.into_iter().map(|(t, _env)| t).collect();
    let motions: usize = traces.iter().map(|t| t.motions.len()).sum();
    eprintln!(
        "replaying {} traces / {} motions over {} connections ({:?}, mode {})...",
        traces.len(),
        motions,
        args.lg.connections,
        args.lg.pacing,
        args.lg.mode.label()
    );
    if args.ab {
        if let Err(e) = run_ab(&args, &traces) {
            eprintln!("copred_loadgen: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.warm {
        let (cold, warm) = match run_warm(&args, &traces) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("copred_loadgen: {e}");
                std::process::exit(1);
            }
        };
        println!("workload      {}", args.combo.label());
        println!("mode          {}", args.lg.mode.label());
        println!("pass            checks  cdqs_issued   warm_opens");
        for (name, r) in [("cold", &cold), ("warm", &warm)] {
            println!(
                "{name:<13} {:>9} {:>12} {:>12}",
                r.checks, r.cdqs_issued, r.warm_opens
            );
        }
        let reduction = 1.0 - warm.cdqs_issued as f64 / cold.cdqs_issued.max(1) as f64;
        println!("warm_cdq_reduction {reduction:.4}");
        if let Some(path) = &args.bench_json {
            if let Err(e) = write_warm_bench_json(path, &args, &cold, &warm) {
                eprintln!("copred_loadgen: writing {path}: {e}");
                std::process::exit(1);
            }
            println!("bench_json    {path}");
        }
        // The op-log records the warm pass.
        let robot_name = traces.first().map_or("", |t| t.robot_name.as_str());
        if let Err(e) = write_oplogs(&args, robot_name, &warm.ops) {
            eprintln!("copred_loadgen: writing op-log: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.trace.is_some() {
        copred_obs::enable();
    }
    // Land a partial BENCH report before the run starts: a run killed
    // mid-flight still leaves a parseable artifact (marked partial=1),
    // overwritten with the full report on success.
    if let Some(path) = &args.bench_json {
        if let Err(e) = write_partial_bench_json(path, &args) {
            eprintln!("copred_loadgen: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    let (report, profile) = match run_arm(&args, &traces, args.lg.trace_ids, true) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("copred_loadgen: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.profile {
        if let Err(e) = std::fs::write(path, profile.folded()) {
            eprintln!("copred_loadgen: writing {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "profile       {path} ({} samples, {} threads)",
            profile.samples(),
            profile.threads()
        );
    }
    if let Some(path) = &args.trace {
        copred_obs::disable();
        let events = copred_obs::drain_events();
        // The trace carries the run's sampled stage profile alongside its
        // events, mirroring the server's trace_dump export.
        let json = copred_obs::chrome_trace_json_with_profile(&events, &profile);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("copred_loadgen: writing {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace         {path} ({} events, {} dropped)",
            events.len(),
            copred_obs::dropped_events()
        );
    }
    println!("workload      {}", args.combo.label());
    println!("mode          {}", args.lg.mode.label());
    println!("checks        {}", report.checks);
    println!("collisions    {}", report.collisions);
    println!("cdqs_issued   {}", report.cdqs_issued);
    println!("cdqs_total    {}", report.cdqs_total);
    println!(
        "cdqs_saved    {} ({:.1}%)",
        report.cdqs_total - report.cdqs_issued,
        100.0 * (report.cdqs_total - report.cdqs_issued) as f64 / report.cdqs_total.max(1) as f64
    );
    println!("retries       {}", report.retries);
    println!("wall_s        {:.3}", report.wall_ns as f64 / 1e9);
    println!("checks_per_s  {:.1}", report.checks_per_sec());
    if let Some(path) = &args.bench_json {
        if let Err(e) = write_bench_json(path, &args, &report) {
            eprintln!("copred_loadgen: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("bench_json    {path}");
    }
    {
        let robot_name = traces.first().map_or("", |t| t.robot_name.as_str());
        if let Err(e) = write_oplogs(&args, robot_name, &report.ops) {
            eprintln!("copred_loadgen: writing op-log: {e}");
            std::process::exit(1);
        }
        if args.oplog != "-" && !report.stats_snapshots.is_empty() {
            let path = stats_path(&args.oplog);
            if let Err(e) = std::fs::write(&path, write_stats_tsv(&report.stats_snapshots)) {
                eprintln!("copred_loadgen: writing {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "stats         {path} ({} snapshots)",
                report.stats_snapshots.len()
            );
        }
    }
}

/// Writes the run summary as a perfwatch BENCH-schema report so ad-hoc
/// loadgen runs land in the same machine-readable trajectory as the
/// canonical `copred_bench` suite.
fn write_bench_json(path: &str, args: &Args, report: &LoadgenReport) -> std::io::Result<()> {
    use copred_obs::{BenchReport, BenchWriter};
    let label = format!("loadgen_{}_{}", args.combo.label(), args.lg.mode.label());
    let bench = BenchReport::new(
        &label,
        &copred_bench::perfwatch::git_sha(),
        args.seed,
        "custom",
    );
    // Flush-on-drop (same contract as the op-log writer): the report lands
    // on disk even if a later step panics.
    let mut w = BenchWriter::new(std::path::Path::new(path), bench);
    push_run(&mut w, "", report);
    w.finish()
}

/// Placeholder written before the run: same BENCH schema, a single
/// `partial=1` record. Overwritten by the full report on clean exit, so
/// its presence marks a run that died mid-flight.
fn write_partial_bench_json(path: &str, args: &Args) -> std::io::Result<()> {
    use copred_obs::{BenchRecord, BenchReport, BenchWriter, Better};
    let label = format!("loadgen_{}_{}", args.combo.label(), args.lg.mode.label());
    let bench = BenchReport::new(
        &label,
        &copred_bench::perfwatch::git_sha(),
        args.seed,
        "custom",
    );
    let mut w = BenchWriter::new(std::path::Path::new(path), bench);
    w.push(BenchRecord::deterministic(
        "loadgen",
        "partial",
        1.0,
        "flag",
        Better::Lower,
    ));
    w.finish()
}

/// `warm=1` variant of [`write_bench_json`]: both passes land in one
/// report, `cold_*`/`warm_*`-prefixed, plus the headline reduction.
fn write_warm_bench_json(
    path: &str,
    args: &Args,
    cold: &LoadgenReport,
    warm: &LoadgenReport,
) -> std::io::Result<()> {
    use copred_obs::{BenchRecord, BenchReport, BenchWriter, Better};
    let label = format!(
        "loadgen_warm_{}_{}",
        args.combo.label(),
        args.lg.mode.label()
    );
    let bench = BenchReport::new(
        &label,
        &copred_bench::perfwatch::git_sha(),
        args.seed,
        "custom",
    );
    let mut w = BenchWriter::new(std::path::Path::new(path), bench);
    push_run(&mut w, "cold_", cold);
    push_run(&mut w, "warm_", warm);
    w.push(BenchRecord::deterministic(
        "loadgen",
        "warm_cdq_reduction",
        1.0 - warm.cdqs_issued as f64 / cold.cdqs_issued.max(1) as f64,
        "fraction",
        Better::Higher,
    ));
    w.finish()
}

/// Pushes one run's records with metric names prefixed (`""`, `"cold_"`,
/// `"warm_"`). Counters are deterministic records, latencies timing.
fn push_run(w: &mut copred_obs::BenchWriter, prefix: &str, report: &LoadgenReport) {
    use copred_obs::{BenchRecord, Better};
    let saved = (report.cdqs_total - report.cdqs_issued) as f64;
    for (metric, value, unit, better) in [
        ("checks", report.checks as f64, "checks", Better::Higher),
        (
            "cdqs_issued",
            report.cdqs_issued as f64,
            "cdqs",
            Better::Lower,
        ),
        (
            "cdqs_total",
            report.cdqs_total as f64,
            "cdqs",
            Better::Lower,
        ),
        (
            "cdqs_saved_frac",
            saved / report.cdqs_total.max(1) as f64,
            "fraction",
            Better::Higher,
        ),
        (
            "warm_opens",
            report.warm_opens as f64,
            "sessions",
            Better::Higher,
        ),
    ] {
        w.push(BenchRecord::deterministic(
            "loadgen",
            &format!("{prefix}{metric}"),
            value,
            unit,
            better,
        ));
    }
    let lat = check_latencies(report);
    for (q, metric) in [(0.5, "p50_ns"), (0.95, "p95_ns"), (0.99, "p99_ns")] {
        w.push(BenchRecord::timing(
            "loadgen",
            &format!("{prefix}{metric}"),
            &[quantile_ns(&lat, q) as f64],
            "ns",
            Better::Lower,
        ));
    }
    w.push(BenchRecord::timing(
        "loadgen",
        &format!("{prefix}wall_s"),
        &[report.wall_ns as f64 / 1e9],
        "s",
        Better::Lower,
    ));
    w.push(BenchRecord::timing(
        "loadgen",
        &format!("{prefix}checks_per_s"),
        &[report.checks_per_sec()],
        "checks/s",
        Better::Higher,
    ));
}

/// Sidecar stats path next to the op-log: `oplog.cprlog` (or `.tsv`) →
/// `oplog.stats.tsv`.
fn stats_path(oplog: &str) -> String {
    let stem = oplog
        .strip_suffix(".cprlog")
        .or_else(|| oplog.strip_suffix(".tsv"))
        .unwrap_or(oplog);
    format!("{stem}.stats.tsv")
}

/// The recording's self-describing metadata: seed, workload label, scale
/// knobs, robot, and the fold of the per-trace environment fingerprints
/// (0 when the run is not fingerprinted).
fn log_meta(args: &Args, robot_name: &str) -> LogMeta {
    let fingerprint = args
        .lg
        .fingerprints
        .as_ref()
        .map_or(0, |fps| fps.iter().fold(0u64, |acc, fp| acc ^ fp));
    LogMeta {
        seed: args.seed,
        fingerprint,
        robot: robot_name.to_string(),
        workload: args.combo.label(),
        scale: format!(
            "queries={} connections={} batch={} mode={}",
            args.queries,
            args.lg.connections,
            args.lg.batch,
            args.lg.mode.label()
        ),
    }
}

/// Writes the run's op-log as a sealed CPRDLOG at `args.oplog` (unless
/// `-`) and, when `tsv=` is set, the legacy TSV export of the same ops.
fn write_oplogs(args: &Args, robot_name: &str, ops: &[OpRecord]) -> std::io::Result<()> {
    let meta = log_meta(args, robot_name);
    if args.oplog != "-" {
        let file = std::fs::File::create(&args.oplog)?;
        let mut w = LogWriter::new(std::io::BufWriter::new(file), &meta)?;
        for op in ops {
            w.append(&LogRecord::from_op_record(op))?;
        }
        w.finish()?;
        println!(
            "oplog         {} ({} ops, CPRDLOG v{})",
            args.oplog,
            ops.len(),
            copred_replay::LOG_VERSION
        );
    }
    if let Some(tsv) = args.tsv.as_deref().filter(|t| *t != "-") {
        std::fs::write(tsv, write_oplog(&meta.to_oplog_meta(), ops))?;
        println!("tsv           {tsv} ({} ops)", ops.len());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(argv: &[&str]) -> Vec<String> {
        argv.iter().map(|s| s.to_string()).collect()
    }

    fn parse_err(argv: &[&str]) -> String {
        match parse_args_from(strs(argv)) {
            Err(e) => e,
            Ok(_) => panic!("{argv:?} must be rejected"),
        }
    }

    #[test]
    fn unknown_flag_fails_fast_and_lists_valid_flags() {
        let err = parse_err(&["seed=7", "conections=4"]);
        assert!(err.contains("unknown option 'conections'"), "{err}");
        for flag in VALID_FLAGS {
            assert!(err.contains(flag), "error should list {flag}: {err}");
        }
    }

    #[test]
    fn bare_word_is_an_error() {
        let err = parse_err(&["inproc"]);
        assert!(err.contains("expected key=value"), "{err}");
    }

    #[test]
    fn known_flags_parse_and_imply_inproc() {
        let args = parse_args_from(strs(&["seed=9", "warm=1", "queries=3"]))
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(args.seed, 9);
        assert_eq!(args.queries, 3);
        assert!(args.warm && args.inproc, "warm=1 implies inproc");
        let err = parse_err(&["ab_budget=5"]);
        assert!(err.contains("ab_budget requires ab=1"), "{err}");
    }
}
