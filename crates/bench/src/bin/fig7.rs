//! Regenerates Fig. 7.
fn main() {
    let mut w = copred_bench::Workloads::new(copred_bench::Scale::from_env_or_exit(), 42);
    print!("{}", copred_bench::figures::fig7(&mut w));
}
