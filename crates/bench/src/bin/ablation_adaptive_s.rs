//! Regenerates the adaptive-S ablation (paper §VI-A1 future work).
fn main() {
    let scale = copred_bench::Scale::from_env_or_exit();
    print!("{}", copred_bench::figures::ablation_adaptive_s(&scale));
}
