//! `copred_bench`: the perfwatch entry point — runs the canonical seeded
//! benchmark suite, writes a machine-readable `BENCH_<label>.json`, and
//! optionally gates against a committed baseline.
//!
//! ```text
//! copred_bench [run] [flags]          run the suite (default mode)
//!   --quick | --full                  workload size (default --quick)
//!   --label <name>                    report label (default: scale name)
//!   --seed <n>                        workload seed (default 42)
//!   --reps <n>                        wall-clock repetitions (default 3/5)
//!   --out <path>                      output (default BENCH_<label>.json)
//!   --baseline <file>                 committed BENCH_*.json to diff against
//!   --check                           exit 1 when the diff shows a regression
//!   --det-threshold <frac>            relative gate for deterministic metrics
//!   --timing-threshold <frac>         relative gate for wall-clock metrics
//!   --accel-artifacts <dir>           also write the accel deep-observability
//!                                     artifacts (prom page, sim-time trace)
//!
//! copred_bench figures --out <dir> [--quick|--full] [--seed <n>]
//!   dual-emit every fig*/tab* section as text and JSON rows
//! ```

use copred_bench::figures as f;
use copred_bench::perfwatch::{self, PerfwatchConfig};
use copred_bench::table::{parse_tables, tables_json};
use copred_bench::{Scale, Workloads};
use copred_obs::{check_against_baseline, BenchReport, BenchWriter, CheckConfig};
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Flags {
    mode: Mode,
    cfg: PerfwatchConfig,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    check: bool,
    check_cfg: CheckConfig,
    accel_artifacts: Option<PathBuf>,
}

#[derive(Debug)]
enum Mode {
    Run,
    Figures,
}

/// Every flag `copred_bench` accepts; unknown flags are rejected with
/// this list so a typo never silently falls back to defaults.
const VALID_FLAGS: &[&str] = &[
    "--quick",
    "--full",
    "--label",
    "--seed",
    "--reps",
    "--out",
    "--baseline",
    "--check",
    "--det-threshold",
    "--timing-threshold",
    "--accel-artifacts",
];

fn parse_flags(raw: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut args = raw.peekable();
    let mode = match args.peek().map(String::as_str) {
        Some("run") => {
            args.next();
            Mode::Run
        }
        Some("figures") => {
            args.next();
            Mode::Figures
        }
        _ => Mode::Run,
    };
    let mut flags = Flags {
        mode,
        cfg: PerfwatchConfig::quick(),
        out: None,
        baseline: None,
        check: false,
        check_cfg: CheckConfig::default(),
        accel_artifacts: None,
    };
    let mut label: Option<String> = None;
    let mut reps: Option<usize> = None;
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--quick" => flags.cfg = PerfwatchConfig::quick(),
            "--full" => flags.cfg = PerfwatchConfig::full(),
            "--label" => label = Some(value("--label")?),
            "--seed" => {
                flags.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--reps" => {
                reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|_| "bad --reps".to_string())?,
                );
            }
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => flags.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--check" => flags.check = true,
            "--det-threshold" => {
                flags.check_cfg.max_rel_deterministic = value("--det-threshold")?
                    .parse()
                    .map_err(|_| "bad --det-threshold".to_string())?;
            }
            "--timing-threshold" => {
                flags.check_cfg.max_rel_timing = value("--timing-threshold")?
                    .parse()
                    .map_err(|_| "bad --timing-threshold".to_string())?;
            }
            "--accel-artifacts" => {
                flags.accel_artifacts = Some(PathBuf::from(value("--accel-artifacts")?));
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (valid flags: {})",
                    VALID_FLAGS.join(", ")
                ))
            }
        }
    }
    if let Some(l) = label {
        flags.cfg.label = l;
    }
    if let Some(r) = reps {
        flags.cfg.reps = r.max(1);
    }
    Ok(flags)
}

fn run_mode(flags: &Flags) -> Result<i32, String> {
    let cfg = &flags.cfg;
    eprintln!(
        "perfwatch: running {} suite (seed {}, {} reps)...",
        cfg.scale_name(),
        cfg.seed,
        cfg.reps
    );
    let out_path = flags
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", cfg.label)));
    let report = perfwatch::run_suites(cfg);
    // The writer carries the flush-on-drop contract; finish() reports
    // errors eagerly on the happy path.
    let mut writer = BenchWriter::new(&out_path, report);
    writer
        .finish()
        .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    let report = writer.report().clone();

    println!("suite    metric                                     value  unit");
    for r in &report.records {
        println!(
            "{:<8} {:<40} {:>11.3}  {}",
            r.suite, r.metric, r.value, r.unit
        );
    }
    println!(
        "wrote {} ({} records, git {})",
        out_path.display(),
        report.records.len(),
        report.git_sha
    );

    if let Some(dir) = &flags.accel_artifacts {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let (tables, prom, trace) = perfwatch::accel_observability(cfg);
        for (name, body) in [
            ("accel_breakdown.txt", &tables),
            ("accel_metrics.prom", &prom),
            ("accel_trace.json", &trace),
        ] {
            let p = dir.join(name);
            std::fs::write(&p, body).map_err(|e| format!("writing {}: {e}", p.display()))?;
        }
        println!("{tables}");
        println!("accel artifacts in {}", dir.display());
    }

    if let Some(baseline_path) = &flags.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        let baseline = BenchReport::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
        let regressions = check_against_baseline(&report, &baseline, &flags.check_cfg);
        if regressions.is_empty() {
            println!(
                "baseline {}: clean ({} metrics gated)",
                baseline_path.display(),
                baseline.records.len()
            );
        } else {
            for r in &regressions {
                eprintln!("REGRESSION {r}");
            }
            eprintln!(
                "{} regression(s) vs {}",
                regressions.len(),
                baseline_path.display()
            );
            if flags.check {
                return Ok(1);
            }
        }
    }
    Ok(0)
}

fn figures_mode(flags: &Flags) -> Result<i32, String> {
    let dir = flags
        .out
        .clone()
        .ok_or_else(|| "figures mode needs --out <dir>".to_string())?;
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let scale = if flags.cfg.quick {
        Scale::quick()
    } else {
        Scale::full()
    };
    let mut w = Workloads::new(scale, flags.cfg.seed);
    let sections: Vec<(&str, String)> = vec![
        ("fig1d", f::fig1d(&scale)),
        ("fig6", f::fig6(&mut w)),
        ("fig7", f::fig7(&mut w)),
        ("oracle_perfwatt", f::oracle_perfwatt(&mut w)),
        ("fig9", f::fig9(&scale)),
        ("fig13", f::fig13(&scale)),
        ("fig14", f::fig14(&scale)),
        ("ablation_adaptive_s", f::ablation_adaptive_s(&scale)),
        ("cpu_sec3e", f::cpu_section(&mut w)),
        ("fig11", f::fig11(&mut w)),
        ("fig15", f::fig15(&mut w)),
        ("fig16", f::fig16(&mut w)),
        ("fig17", f::fig17(&mut w)),
        ("fig18", f::fig18(&mut w)),
        ("tab_overheads", f::tab_overheads()),
        ("sec7_spheres", f::sec7_spheres(&mut w)),
        ("sec7_dadup", f::sec7_dadup(&scale)),
    ];
    for (name, body) in &sections {
        write_section(&dir, name, body)?;
    }
    println!(
        "wrote {} sections (text + JSON rows) to {}",
        sections.len(),
        dir.display()
    );
    Ok(0)
}

fn write_section(dir: &Path, name: &str, body: &str) -> Result<(), String> {
    let txt = dir.join(format!("{name}.txt"));
    std::fs::write(&txt, body).map_err(|e| format!("writing {}: {e}", txt.display()))?;
    let json = dir.join(format!("{name}.json"));
    let rows = tables_json(&parse_tables(body));
    std::fs::write(&json, rows).map_err(|e| format!("writing {}: {e}", json.display()))?;
    Ok(())
}

fn main() {
    let flags = match parse_flags(std::env::args().skip(1)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("copred_bench: {e}");
            std::process::exit(2);
        }
    };
    let result = match flags.mode {
        Mode::Run => run_mode(&flags),
        Mode::Figures => figures_mode(&flags),
    };
    match result {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("copred_bench: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Flags, String> {
        parse_flags(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flag_fails_fast_and_lists_valid_flags() {
        let err = parse(&["run", "--sede", "7"]).unwrap_err();
        assert!(err.contains("unknown flag '--sede'"), "{err}");
        for flag in VALID_FLAGS {
            assert!(err.contains(flag), "error should list {flag}: {err}");
        }
    }

    #[test]
    fn known_flags_parse() {
        let f = parse(&["run", "--full", "--seed", "7", "--reps", "2", "--check"]).unwrap();
        assert!(matches!(f.mode, Mode::Run));
        assert!(!f.cfg.quick);
        assert_eq!(f.cfg.seed, 7);
        assert_eq!(f.cfg.reps, 2);
        assert!(f.check);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&["--label"]).unwrap_err();
        assert!(err.contains("--label needs a value"), "{err}");
    }

    #[test]
    fn figures_subcommand_selects_mode() {
        let f = parse(&["figures", "--out", "figs"]).unwrap();
        assert!(matches!(f.mode, Mode::Figures));
        assert_eq!(f.out.as_deref(), Some(Path::new("figs")));
    }
}
