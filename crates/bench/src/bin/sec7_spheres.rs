//! Regenerates the §VII-1 sphere-CDU study.
fn main() {
    let mut w = copred_bench::Workloads::new(copred_bench::Scale::from_env_or_exit(), 42);
    print!("{}", copred_bench::figures::sec7_spheres(&mut w));
}
