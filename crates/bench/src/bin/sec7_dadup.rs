//! Regenerates the §VII-2 Dadu-P study.
fn main() {
    let scale = copred_bench::Scale::from_env_or_exit();
    print!("{}", copred_bench::figures::sec7_dadup(&scale));
}
