//! Regenerates Fig. 11 plus the §III-E CPU section.
fn main() {
    let mut w = copred_bench::Workloads::new(copred_bench::Scale::from_env_or_exit(), 42);
    print!("{}", copred_bench::figures::cpu_section(&mut w));
    print!("{}", copred_bench::figures::fig11(&mut w));
}
