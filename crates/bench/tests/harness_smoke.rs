//! Smoke tests: every figure harness runs end-to-end at a tiny scale and
//! produces a well-formed table. These protect the `all_figures` pipeline
//! from regressions in any crate.

use copred_bench::{figures, Scale, Workloads};

fn tiny() -> Scale {
    Scale {
        scenes: 2,
        poses_per_scene: 120,
        queries: 3,
        suite_scenarios: 1,
        suite_motions: 6,
        mc_trials: 200,
    }
}

fn check_table(name: &str, out: &str) {
    assert!(out.starts_with("== "), "{name}: missing title: {out:.40}");
    assert!(out.lines().count() >= 4, "{name}: too few lines");
    assert!(!out.contains("NaN"), "{name}: NaN leaked into output");
    assert!(!out.contains("inf"), "{name}: infinity leaked into output");
}

#[test]
fn scale_free_harnesses_run() {
    let scale = tiny();
    check_table("fig1d", &figures::fig1d(&scale));
    check_table("fig13", &figures::fig13(&scale));
    check_table("fig14", &figures::fig14(&scale));
    check_table("ablation_adaptive_s", &figures::ablation_adaptive_s(&scale));
    check_table("tab_overheads", &figures::tab_overheads());
    check_table("sec7_dadup", &figures::sec7_dadup(&scale));
}

#[test]
fn fig9_runs_at_tiny_scale() {
    let out = figures::fig9(&tiny());
    check_table("fig9", &out);
    // Both clutter levels and all six hash families appear.
    assert!(out.contains("low-clutter") && out.contains("high-clutter"));
    for family in [
        "POSE-",
        "POSE+fold",
        "POSE-part",
        "ENPOSE",
        "COORD-",
        "ENCOORD",
    ] {
        assert!(out.contains(family), "missing {family}");
    }
}

#[test]
fn workload_backed_harnesses_run() {
    let mut w = Workloads::new(tiny(), 7);
    check_table("fig6", &figures::fig6(&mut w));
    check_table("fig7", &figures::fig7(&mut w));
    check_table("fig15", &figures::fig15(&mut w));
    check_table("fig16", &figures::fig16(&mut w));
    check_table("fig17", &figures::fig17(&mut w));
    check_table("fig18", &figures::fig18(&mut w));
    check_table("fig11", &figures::fig11(&mut w));
    check_table("cpu", &figures::cpu_section(&mut w));
    check_table("oracle_perfwatt", &figures::oracle_perfwatt(&mut w));
    check_table("sec7_spheres", &figures::sec7_spheres(&mut w));
}
