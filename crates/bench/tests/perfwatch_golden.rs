//! Stability contract for the perfwatch BENCH JSON schema.
//!
//! The golden file pins the exact serialized form (field order, number
//! formatting, schema version) of a fixed synthetic report. CI diffs mean
//! the schema changed — bump `BENCH_SCHEMA_VERSION` and regenerate with
//! `REGEN_GOLDEN=1 cargo test -p copred-bench --test perfwatch_golden`.

use copred_obs::{
    check_against_baseline, BenchRecord, BenchReport, Better, CheckConfig, BENCH_SCHEMA_VERSION,
};

/// A fixed synthetic report — no live benchmark runs, so the golden bytes
/// depend only on the serializer.
fn fixture() -> BenchReport {
    let mut r = BenchReport::new("golden", "0123456789ab", 42, "quick");
    r.records.push(BenchRecord::deterministic(
        "schedule",
        "mpnet2d_cdqs_coord",
        1234.0,
        "cdqs",
        Better::Lower,
    ));
    r.records.push(BenchRecord::deterministic(
        "accel",
        "copu_speedup",
        4.5,
        "ratio",
        Better::Higher,
    ));
    r.records.push(BenchRecord::timing(
        "service",
        "loopback_p99",
        &[120.0, 100.0, 110.0],
        "us",
        Better::Lower,
    ));
    r
}

#[test]
fn bench_json_matches_golden() {
    let got = fixture().to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bench_quick.json");
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with REGEN_GOLDEN=1 cargo test -p copred-bench");
    assert_eq!(
        got, want,
        "BENCH JSON schema drifted; if intentional, bump BENCH_SCHEMA_VERSION \
         and regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_round_trips_through_parser() {
    let report = fixture();
    let parsed = BenchReport::from_json(&report.to_json()).expect("parse own output");
    assert_eq!(parsed, report);
    assert_eq!(parsed.schema_version, BENCH_SCHEMA_VERSION);
}

#[test]
fn check_flags_artificially_slowed_run() {
    let baseline = fixture();
    let mut slowed = fixture();
    // Doctor the current run: a deterministic count regresses by 2x (way
    // past the 25% gate) and the timing metric by 10x (past the 4x gate).
    for rec in &mut slowed.records {
        match rec.metric.as_str() {
            "mpnet2d_cdqs_coord" => rec.value *= 2.0,
            "loopback_p99" => rec.value *= 10.0,
            _ => {}
        }
    }
    let regressions = check_against_baseline(&slowed, &baseline, &CheckConfig::default());
    let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
    assert!(metrics.contains(&"mpnet2d_cdqs_coord"), "{metrics:?}");
    assert!(metrics.contains(&"loopback_p99"), "{metrics:?}");
    // The untouched improvement-direction metric passes.
    assert!(!metrics.contains(&"copu_speedup"), "{metrics:?}");

    // The clean run is clean.
    assert!(check_against_baseline(&fixture(), &baseline, &CheckConfig::default()).is_empty());
}
