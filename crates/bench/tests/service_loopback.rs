//! Acceptance demo for the copred service: a captured MPNet-Baxter
//! workload replayed over ≥8 concurrent loadgen connections against a
//! loopback server. Fully seeded — two coord runs agree exactly — and the
//! server's own STATS must show prediction issuing fewer CDQs than the
//! naive order on the same workload. The op-log TSV lands on disk and
//! parses back.

use copred_bench::{Combo, Scale};
use copred_service::client::stat_u64;
use copred_service::protocol::SchedMode;
use copred_service::{
    parse_oplog, run_loadgen, write_oplog, LoadgenConfig, Pacing, Server, ServerConfig,
    ServiceClient,
};
use copred_trace::QueryTrace;

fn capture_mpnet_baxter() -> Vec<QueryTrace> {
    let combo = Combo::paper_six()[0];
    assert_eq!(combo.label(), "MPNet-Baxter");
    let scale = Scale {
        queries: 8,
        ..Scale::quick()
    };
    let traces = copred_bench::workloads::planner_traces(&combo, &scale, 42);
    assert!(
        traces.len() >= 8,
        "want one trace per connection, got {}",
        traces.len()
    );
    assert!(traces
        .iter()
        .all(|t| t.robot_name == "baxter" && !t.motions.is_empty()));
    traces
}

/// Runs the loadgen against a fresh loopback server; returns the client
/// report plus the server's own global STATS counters.
fn replay(traces: &[QueryTrace], mode: SchedMode) -> (copred_service::LoadgenReport, u64, u64) {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.local_addr();
    let cfg = LoadgenConfig {
        addr: addr.to_string(),
        connections: 8,
        mode,
        seed: 42,
        pacing: Pacing::Closed,
        batch: 8,
        max_retries: 256,
        metrics_interval: None,
        fingerprints: None,
        trace_ids: true,
        stats_tsv: None,
    };
    let report = run_loadgen(&cfg, traces).expect("loadgen run");
    let mut c = ServiceClient::connect(addr).expect("connect for stats");
    let kv = c.stats(None).expect("global stats");
    let issued = stat_u64(&kv, "cdqs_issued").expect("cdqs_issued stat");
    let total = stat_u64(&kv, "cdqs_total").expect("cdqs_total stat");
    (report, issued, total)
}

#[test]
fn mpnet_baxter_loopback_demo() {
    let traces = capture_mpnet_baxter();

    let (coord_a, issued_a, total_a) = replay(&traces, SchedMode::Coord);
    let (coord_b, issued_b, _) = replay(&traces, SchedMode::Coord);
    let (naive, issued_naive, total_naive) = replay(&traces, SchedMode::Naive);

    // Seeded determinism across full server+client runs.
    assert_eq!(issued_a, issued_b, "coord replays must be bit-identical");
    assert_eq!(coord_a.collisions, coord_b.collisions);

    // Client-side sums and server-side STATS agree.
    assert_eq!(coord_a.cdqs_issued, issued_a);
    assert_eq!(coord_a.cdqs_total, total_a);

    // Same workload either way; prediction must save CDQs.
    assert_eq!(total_a, total_naive);
    assert_eq!(
        coord_a.collisions, naive.collisions,
        "outcomes are schedule-invariant"
    );
    assert!(
        issued_a < issued_naive,
        "STATS: coord issued {issued_a} of {total_a}, naive issued {issued_naive}"
    );

    // The op-log: one line per wire op, written to disk and parsed back
    // along with its self-describing metadata.
    let meta = copred_service::OplogMeta {
        seed: 42,
        workload: "MPNet-Baxter".to_string(),
        scale: format!("traces={}", traces.len()),
    };
    let path = std::env::temp_dir().join("copred_loadgen_demo_oplog.tsv");
    std::fs::write(&path, write_oplog(&meta, &coord_a.ops)).expect("write op-log");
    let (back_meta, back) =
        parse_oplog(&std::fs::read_to_string(&path).expect("read op-log")).expect("parse op-log");
    assert_eq!(back_meta, meta);
    assert_eq!(back, coord_a.ops);
    let n_checks = back.iter().filter(|op| op.verb == "check_motion").count();
    assert!(
        n_checks > 0 && back.len() > 2 * traces.len(),
        "opens, closes, and batches logged"
    );
    std::fs::remove_file(&path).ok();
}
