//! Early-termination contract of `copred_loadgen`: a run killed
//! mid-flight must still leave parseable partial artifacts — the
//! streamed sidecar-stats TSV (written atomically per snapshot) and the
//! placeholder BENCH-schema JSON (written before the run, marked
//! `partial=1`, overwritten only on clean exit).

use copred_obs::BenchReport;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn killed_loadgen_leaves_partial_stats_and_bench_json() {
    let dir = std::env::temp_dir().join(format!("copred-loadgen-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let oplog = dir.join("run.cprlog");
    let bench = dir.join("run.bench.json");
    let stats = dir.join("run.stats.tsv");

    // Open-loop pacing stretches the replay to several seconds, so the
    // kill lands mid-run; 50ms sampling gets a snapshot out quickly.
    let mut child = Command::new(env!("CARGO_BIN_EXE_copred_loadgen"))
        .args([
            "inproc=1".to_string(),
            "connections=1".to_string(),
            "batch=1".to_string(),
            "queries=8".to_string(),
            "pacing=open:200000".to_string(),
            "metrics_interval=0.05".to_string(),
            format!("oplog={}", oplog.display()),
            format!("bench_json={}", bench.display()),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn copred_loadgen");

    // Wait for both streamed artifacts, then kill while the run is live.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if stats.exists() && bench.exists() {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("loadgen exited before artifacts appeared: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "no partial artifacts within 60s (stats: {}, bench: {})",
            stats.exists(),
            bench.exists()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill loadgen");
    let _ = child.wait();

    // The stats sidecar parses: a header plus complete snapshot rows,
    // every row with the header's column count (rename is atomic, so no
    // torn tail even though the writer died).
    let text = std::fs::read_to_string(&stats).expect("read partial stats tsv");
    let mut lines = text.lines();
    let header = lines.next().expect("stats header");
    let cols = header.split('\t').count();
    assert!(
        header.starts_with("elapsed_ns\t") && cols > 1,
        "unexpected header: {header}"
    );
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split('\t').count(), cols, "torn row: {line:?}");
        rows += 1;
    }
    assert!(rows >= 1, "want at least one snapshot row");

    // The BENCH placeholder parses under the schema and is flagged as a
    // run that never completed.
    let report = BenchReport::from_json(&std::fs::read_to_string(&bench).expect("read bench json"))
        .expect("partial bench json must parse");
    assert!(
        report
            .records
            .iter()
            .any(|r| r.metric == "partial" && r.value == 1.0),
        "partial marker missing: {:?}",
        report.records
    );

    let _ = std::fs::remove_dir_all(&dir);
}
