//! Smoke test: the conformance harness stays green on the bench crate's
//! side of the workspace. Keeps `copred-conform` linked into the bench
//! build so regenerating figures and running the gate share one compiled
//! graph, and gives `cargo test -p copred-bench` a fast end-to-end signal
//! before the heavier CI gate runs.

use copred_conform::{run_all, ConformConfig};

#[test]
fn conformance_smoke() {
    let report = run_all(&ConformConfig {
        seed: 0x5EED,
        schedule_iters: 25,
        service_traces: 4,
        fault_cases: 16,
        store_cases: 1,
        replay_cases: 1,
        trace_cases: 1,
        profile_cases: 1,
        fleet_cases: 1,
    });
    assert!(report.is_clean(), "{:?}", report.failures);
    assert!(report.total_iterations() >= 47);
}
