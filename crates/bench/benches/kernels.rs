//! Criterion microbenchmarks for the hot kernels behind every figure:
//! COORD/POSE hashing, CHT lookups/updates, the OBB SAT test, forward
//! kinematics, and end-to-end motion checks with and without prediction.

use copred_collision::{check_motion_scheduled, Environment, Schedule};
use copred_core::hash::CollisionHash;
use copred_core::{Cht, ChtParams, CoordHash, HashInput, PoseHash, Predictor};
use copred_geometry::{Aabb, Mat3, Obb, Vec3};
use copred_kinematics::{presets, Config, Motion, Robot};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_hash_kernels(c: &mut Criterion) {
    let robot: Robot = presets::kuka_iiwa().into();
    let coord = CoordHash::paper_default(&robot);
    let pose_hash = PoseHash::new(&robot, 4);
    let q = Config::new(vec![0.3, -0.5, 0.8, -1.0, 0.2, 0.6, -0.4]);
    let center = robot.fk(&q).links[3].center;
    let input = HashInput { config: &q, center };
    let mut g = c.benchmark_group("hash");
    g.bench_function("coord", |b| {
        b.iter(|| black_box(coord.code(black_box(&input))))
    });
    g.bench_function("pose", |b| {
        b.iter(|| black_box(pose_hash.code(black_box(&input))))
    });
    g.finish();
}

fn bench_cht_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cht");
    g.bench_function("predict", |b| {
        let mut cht = Cht::new(ChtParams::paper_arm(), 1);
        cht.observe(100, true);
        let mut code = 0u64;
        b.iter(|| {
            code = (code + 1) & 0xFFF;
            black_box(cht.predict(black_box(code)))
        })
    });
    g.bench_function("observe", |b| {
        let mut cht = Cht::new(ChtParams::paper_arm(), 1);
        let mut code = 0u64;
        b.iter(|| {
            code = (code + 1) & 0xFFF;
            cht.observe(black_box(code), code & 1 == 0);
        })
    });
    g.finish();
}

fn bench_obb_sat(c: &mut Criterion) {
    let a = Obb::new(Vec3::ZERO, Mat3::rot_z(0.4), Vec3::new(0.3, 0.2, 0.1));
    let hit = Obb::new(
        Vec3::new(0.2, 0.1, 0.0),
        Mat3::rot_x(0.7),
        Vec3::new(0.2, 0.2, 0.2),
    );
    let miss = Obb::new(
        Vec3::new(2.0, 2.0, 2.0),
        Mat3::rot_y(1.0),
        Vec3::new(0.2, 0.2, 0.2),
    );
    let mut g = c.benchmark_group("obb_sat");
    g.bench_function("hit", |b| {
        b.iter(|| black_box(a.intersects(black_box(&hit))))
    });
    g.bench_function("miss", |b| {
        b.iter(|| black_box(a.intersects(black_box(&miss))))
    });
    g.finish();
}

fn bench_fk(c: &mut Criterion) {
    let robot: Robot = presets::baxter_arm().into();
    let q = Config::new(vec![0.1, -0.4, 0.9, 0.5, -0.7, 0.3, 0.2]);
    c.bench_function("fk_7dof", |b| b.iter(|| black_box(robot.fk(black_box(&q)))));
}

fn bench_motion_check(c: &mut Criterion) {
    let robot: Robot = presets::planar_2d().into();
    let env = Environment::new(
        robot.workspace(),
        vec![Aabb::new(
            Vec3::new(0.2, -1.0, -0.1),
            Vec3::new(0.6, 1.0, 0.1),
        )],
    );
    let poses =
        Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(33);
    let mut g = c.benchmark_group("motion_check");
    g.bench_function("csp", |b| {
        b.iter(|| {
            black_box(check_motion_scheduled(
                black_box(&robot),
                &env,
                &poses,
                Schedule::csp_default(),
            ))
        })
    });
    g.bench_function("coord_warm", |b| {
        // Warm predictor: the regime the accelerator operates in.
        let mut pred = Predictor::coord_default(&robot, 3);
        let _ = pred.check_motion(&robot, &env, &poses);
        b.iter(|| black_box(pred.check_motion(black_box(&robot), &env, &poses)))
    });
    g.bench_function("coord_cold", |b| {
        b.iter_batched(
            || Predictor::coord_default(&robot, 3),
            |mut pred| black_box(pred.check_motion(&robot, &env, &poses)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_accel_sim(c: &mut Criterion) {
    use copred_accel::{AccelConfig, AccelSim};
    use copred_planners::{MotionRecord, PlanLog, Stage};
    use copred_trace::QueryTrace;

    // A representative arm motion trace (20 poses x 7 links).
    let robot: Robot = presets::kuka_iiwa().into();
    let env = Environment::new(
        robot.workspace(),
        vec![Aabb::from_center_half_extents(
            Vec3::new(0.45, 0.1, 0.45),
            Vec3::splat(0.22),
        )],
    );
    let mut rng = StdRng::seed_from_u64(2);
    let poses = Motion::new(
        robot.sample_uniform(&mut rng),
        robot.sample_uniform(&mut rng),
    )
    .discretize(20);
    let colliding = copred_collision::motion_collides(&robot, &env, &poses);
    let trace = QueryTrace::from_log(
        &robot,
        &env,
        &PlanLog {
            records: vec![MotionRecord {
                poses,
                stage: Stage::Explore,
                colliding,
            }],
        },
    );
    let motion = &trace.motions[0];
    let hash = copred_core::CoordHash::paper_default(&robot);
    let mut g = c.benchmark_group("accel_sim_motion");
    g.bench_function("baseline_4cdu", |b| {
        let mut sim = AccelSim::new(AccelConfig::baseline(4), hash.clone());
        b.iter(|| black_box(sim.run_motion(black_box(motion))))
    });
    g.bench_function("copu_4cdu", |b| {
        let mut sim = AccelSim::new(
            AccelConfig::copu(4, copred_core::ChtParams::paper_arm()),
            hash.clone(),
        );
        b.iter(|| black_box(sim.run_motion(black_box(motion))))
    });
    g.finish();
}

fn bench_scene_generation(c: &mut Criterion) {
    let robot: Robot = presets::planar_2d().into();
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("calibrated_scene", |b| {
        b.iter(|| {
            black_box(copred_envgen::calibrated_environment(
                &robot,
                copred_envgen::Density::Medium,
                50,
                &mut rng,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_hash_kernels,
    bench_cht_ops,
    bench_obb_sat,
    bench_fk,
    bench_motion_check,
    bench_accel_sim,
    bench_scene_generation
);
criterion_main!(benches);
