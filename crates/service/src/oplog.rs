//! The load generator's TSV op-log: one line per wire operation, in the
//! style of object-store benchmark logs (idx, endpoint, verb, payload
//! bytes, start offset, duration). The log is the raw material for
//! latency/throughput analysis offline — EXPERIMENTS.md plots come from
//! exactly this format.

use std::fmt::Write as _;

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global operation index in completion order.
    pub idx: u64,
    /// Session token the operation targeted (0 for `open` and global
    /// `stats`).
    pub session: u64,
    /// Wire verb (`open`, `check_motion`, `reset`, `stats`, `close`).
    pub verb: String,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// Start time as nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Wall time from write to parsed reply.
    pub duration_ns: u64,
    /// Outcome: `ok`, `retry_after`, or `err`.
    pub status: String,
}

/// Column order of the TSV.
pub const OPLOG_HEADER: &str = "idx\tsession\tverb\tbytes\tstart_ns\tduration_ns\tstatus";

/// Renders records as TSV with a header line.
pub fn write_oplog(ops: &[OpRecord]) -> String {
    let mut out = String::with_capacity(ops.len() * 48 + OPLOG_HEADER.len() + 1);
    out.push_str(OPLOG_HEADER);
    out.push('\n');
    for op in ops {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            op.idx, op.session, op.verb, op.bytes, op.start_ns, op.duration_ns, op.status
        );
    }
    out
}

/// Parses a TSV op-log back into records.
///
/// # Errors
///
/// Returns a located reason for a bad header, wrong column count, or
/// unparseable numbers.
pub fn parse_oplog(text: &str) -> Result<Vec<OpRecord>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty op-log")?;
    if header != OPLOG_HEADER {
        return Err(format!("bad op-log header: {header:?}"));
    }
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let ln = i + 2;
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 7 {
            return Err(format!("line {ln}: want 7 columns, got {}", cols.len()));
        }
        let num = |j: usize, what: &str| -> Result<u64, String> {
            cols[j]
                .parse()
                .map_err(|_| format!("line {ln}: bad {what} {:?}", cols[j]))
        };
        ops.push(OpRecord {
            idx: num(0, "idx")?,
            session: num(1, "session")?,
            verb: cols[2].to_string(),
            bytes: num(3, "bytes")?,
            start_ns: num(4, "start_ns")?,
            duration_ns: num(5, "duration_ns")?,
            status: cols[6].to_string(),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<OpRecord> {
        vec![
            OpRecord {
                idx: 0,
                session: 0,
                verb: "open".into(),
                bytes: 24,
                start_ns: 0,
                duration_ns: 81_233,
                status: "ok".into(),
            },
            OpRecord {
                idx: 1,
                session: 3,
                verb: "check_motion".into(),
                bytes: 4_096,
                start_ns: 90_000,
                duration_ns: 1_502_118,
                status: "retry_after".into(),
            },
        ]
    }

    #[test]
    fn tsv_roundtrip() {
        let ops = sample();
        let text = write_oplog(&ops);
        assert!(text.starts_with(OPLOG_HEADER));
        assert_eq!(parse_oplog(&text).expect("parse"), ops);
    }

    #[test]
    fn malformed_logs_are_rejected() {
        assert!(parse_oplog("").is_err());
        assert!(parse_oplog("idx\tbad\theader\n").is_err());
        let text = format!("{OPLOG_HEADER}\n1\t2\tcheck\n");
        assert!(parse_oplog(&text).unwrap_err().contains("7 columns"));
        let text = format!("{OPLOG_HEADER}\nx\t0\topen\t1\t2\t3\tok\n");
        assert!(parse_oplog(&text).unwrap_err().contains("bad idx"));
    }
}
