//! The load generator's TSV op-log: one line per wire operation, in the
//! style of object-store benchmark logs (idx, endpoint, verb, payload
//! bytes, start offset, duration). The log is the raw material for
//! latency/throughput analysis offline — EXPERIMENTS.md plots come from
//! exactly this format.

use crate::loadgen::StatsSnapshot;
use std::fmt::Write as _;
use std::io::{self, Write};

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global operation index in completion order.
    pub idx: u64,
    /// Session token the operation targeted (0 for `open` and global
    /// `stats`).
    pub session: u64,
    /// Wire verb (`open`, `check_motion`, `reset`, `stats`, `close`).
    pub verb: String,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// Start time as nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Wall time from write to parsed reply.
    pub duration_ns: u64,
    /// Outcome: `ok`, `retry_after`, or `err`.
    pub status: String,
}

/// Column order of the TSV.
pub const OPLOG_HEADER: &str = "idx\tsession\tverb\tbytes\tstart_ns\tduration_ns\tstatus";

/// Renders records as TSV with a header line.
pub fn write_oplog(ops: &[OpRecord]) -> String {
    let mut out = String::with_capacity(ops.len() * 48 + OPLOG_HEADER.len() + 1);
    out.push_str(OPLOG_HEADER);
    out.push('\n');
    for op in ops {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            op.idx, op.session, op.verb, op.bytes, op.start_ns, op.duration_ns, op.status
        );
    }
    out
}

/// Streaming op-log writer: emits the header row up front, appends one
/// TSV line per record, and flushes on drop — so a run that is
/// interrupted (or a caller that forgets the final flush) still leaves a
/// parseable log on disk.
#[derive(Debug)]
pub struct OplogWriter<W: Write> {
    out: io::BufWriter<W>,
    records: u64,
}

impl<W: Write> OplogWriter<W> {
    /// Wraps `sink` and writes the header row.
    ///
    /// # Errors
    ///
    /// Any write failure.
    pub fn new(sink: W) -> io::Result<Self> {
        let mut out = io::BufWriter::new(sink);
        writeln!(out, "{OPLOG_HEADER}")?;
        Ok(OplogWriter { out, records: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Any write failure.
    pub fn record(&mut self, op: &OpRecord) -> io::Result<()> {
        writeln!(
            self.out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            op.idx, op.session, op.verb, op.bytes, op.start_ns, op.duration_ns, op.status
        )?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far (excluding the header).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered lines to the sink.
    ///
    /// # Errors
    ///
    /// Any flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl<W: Write> Drop for OplogWriter<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Renders periodic stats snapshots as the op-log's sidecar TSV:
/// `elapsed_ns` plus one column per stat key, keys taken from the first
/// snapshot (all snapshots of one run share the server's fixed key
/// order). Empty input renders an empty string.
pub fn write_stats_tsv(snapshots: &[StatsSnapshot]) -> String {
    let Some(first) = snapshots.first() else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str("elapsed_ns");
    for (k, _) in &first.stats {
        out.push('\t');
        out.push_str(k);
    }
    out.push('\n');
    for snap in snapshots {
        let _ = write!(out, "{}", snap.elapsed_ns);
        for (k, _) in &first.stats {
            let v = snap
                .stats
                .iter()
                .find(|(key, _)| key == k)
                .map_or("", |(_, v)| v.as_str());
            out.push('\t');
            out.push_str(v);
        }
        out.push('\n');
    }
    out
}

/// Parses a TSV op-log back into records.
///
/// # Errors
///
/// Returns a located reason for a bad header, wrong column count, or
/// unparseable numbers.
pub fn parse_oplog(text: &str) -> Result<Vec<OpRecord>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty op-log")?;
    if header != OPLOG_HEADER {
        return Err(format!("bad op-log header: {header:?}"));
    }
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let ln = i + 2;
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 7 {
            return Err(format!("line {ln}: want 7 columns, got {}", cols.len()));
        }
        let num = |j: usize, what: &str| -> Result<u64, String> {
            cols[j]
                .parse()
                .map_err(|_| format!("line {ln}: bad {what} {:?}", cols[j]))
        };
        ops.push(OpRecord {
            idx: num(0, "idx")?,
            session: num(1, "session")?,
            verb: cols[2].to_string(),
            bytes: num(3, "bytes")?,
            start_ns: num(4, "start_ns")?,
            duration_ns: num(5, "duration_ns")?,
            status: cols[6].to_string(),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<OpRecord> {
        vec![
            OpRecord {
                idx: 0,
                session: 0,
                verb: "open".into(),
                bytes: 24,
                start_ns: 0,
                duration_ns: 81_233,
                status: "ok".into(),
            },
            OpRecord {
                idx: 1,
                session: 3,
                verb: "check_motion".into(),
                bytes: 4_096,
                start_ns: 90_000,
                duration_ns: 1_502_118,
                status: "retry_after".into(),
            },
        ]
    }

    #[test]
    fn tsv_roundtrip() {
        let ops = sample();
        let text = write_oplog(&ops);
        assert!(text.starts_with(OPLOG_HEADER));
        assert_eq!(parse_oplog(&text).expect("parse"), ops);
    }

    #[test]
    fn streaming_writer_matches_batch_writer_and_flushes_on_drop() {
        let ops = sample();
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut w = OplogWriter::new(&mut buf).expect("header");
            for op in &ops {
                w.record(op).expect("record");
            }
            assert_eq!(w.records(), 2);
            // No explicit flush: the drop must leave a complete log.
        }
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text, write_oplog(&ops));
        assert_eq!(parse_oplog(&text).expect("parse"), ops);
    }

    #[test]
    fn empty_streaming_log_is_parseable() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let _w = OplogWriter::new(&mut buf).expect("header");
        }
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(parse_oplog(&text).expect("parse"), vec![]);
    }

    #[test]
    fn stats_tsv_has_header_and_aligned_columns() {
        let snaps = vec![
            StatsSnapshot {
                elapsed_ns: 1_000,
                stats: vec![
                    ("checks".into(), "10".into()),
                    ("cdqs_issued".into(), "40".into()),
                ],
            },
            StatsSnapshot {
                elapsed_ns: 2_000,
                stats: vec![
                    ("checks".into(), "25".into()),
                    ("cdqs_issued".into(), "90".into()),
                ],
            },
        ];
        let text = write_stats_tsv(&snaps);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "elapsed_ns\tchecks\tcdqs_issued");
        assert_eq!(lines[1], "1000\t10\t40");
        assert_eq!(lines[2], "2000\t25\t90");
        assert_eq!(lines.len(), 3);
        assert_eq!(write_stats_tsv(&[]), "");
    }

    #[test]
    fn malformed_logs_are_rejected() {
        assert!(parse_oplog("").is_err());
        assert!(parse_oplog("idx\tbad\theader\n").is_err());
        let text = format!("{OPLOG_HEADER}\n1\t2\tcheck\n");
        assert!(parse_oplog(&text).unwrap_err().contains("7 columns"));
        let text = format!("{OPLOG_HEADER}\nx\t0\topen\t1\t2\t3\tok\n");
        assert!(parse_oplog(&text).unwrap_err().contains("bad idx"));
    }
}
