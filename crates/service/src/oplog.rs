//! The load generator's TSV op-log: one line per wire operation, in the
//! style of object-store benchmark logs (idx, endpoint, verb, payload
//! bytes, start offset, duration), preceded by a self-describing header.
//! The log is the raw material for latency/throughput analysis offline —
//! EXPERIMENTS.md plots come from exactly this format — and, since v2,
//! carries the full request/response payloads so `copred-replay` can
//! export to and import from it losslessly.
//!
//! Format, line by line:
//!
//! ```text
//! # copred-oplog v2
//! # meta seed 42
//! # meta workload MPNet-2D
//! # meta scale queries=3
//! idx\tsession\tverb\tbytes\tstart_ns\tduration_ns\tstatus\ttag\trequest\tresponse
//! 0\t1\topen\t24\t0\t81233\tok\tconn0/trace0\topen planar-2d 2 coord 7\n\tok session 1 warm 0\n
//! ```
//!
//! The version line and the three metadata keys are mandatory on read:
//! version-mismatched or metadata-less logs are rejected with a structured
//! [`OplogError`] (never a panic), mirroring the strict-parse posture of
//! `Scale::from_env`. Payload columns escape `\` `\t` `\n` `\r` so one
//! record stays one line.

use crate::loadgen::StatsSnapshot;
use std::fmt::{self, Write as _};
use std::io::{self, Write};

/// Schema version this crate writes. Bump on any column or metadata
/// change; readers reject other versions.
pub const OPLOG_VERSION: u32 = 2;

/// First line of every op-log.
pub const OPLOG_MAGIC: &str = "# copred-oplog v2";

/// Column order of the TSV.
pub const OPLOG_HEADER: &str =
    "idx\tsession\tverb\tbytes\tstart_ns\tduration_ns\tstatus\ttag\trequest\tresponse";

/// Run provenance embedded in the log header: everything a replay needs
/// to know it is driving the workload the log came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OplogMeta {
    /// Base seed of the recorded run (per-trace seeds derive from it).
    pub seed: u64,
    /// Workload label, e.g. a `Combo` label like `MPNet-2D`.
    pub workload: String,
    /// Scale description, e.g. `queries=3 connections=1`.
    pub scale: String,
}

/// Why an op-log was rejected on read. Structured so tools can
/// distinguish "wrong version" from "corrupt line" without string
/// matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OplogError {
    /// The input had no lines at all.
    Empty,
    /// The first line was not [`OPLOG_MAGIC`] — either a pre-v2 log or
    /// not an op-log. Carries the line found.
    VersionMismatch {
        /// The first line of the rejected input.
        found: String,
    },
    /// A mandatory `# meta` key (`seed`, `workload`, `scale`) was absent.
    MissingMeta {
        /// The missing key.
        key: &'static str,
    },
    /// A line failed to parse: wrong column count, bad number, bad
    /// escape, or a malformed/missing column header.
    Malformed {
        /// 1-based line number of the offending line (0 when the problem
        /// is the absence of a line, e.g. no column header).
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for OplogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OplogError::Empty => write!(f, "empty op-log"),
            OplogError::VersionMismatch { found } => write!(
                f,
                "op-log version mismatch: want {OPLOG_MAGIC:?}, found {found:?}"
            ),
            OplogError::MissingMeta { key } => {
                write!(f, "op-log is missing mandatory `# meta {key}` header")
            }
            OplogError::Malformed { line, reason } => {
                write!(f, "op-log line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for OplogError {}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global operation index in completion order.
    pub idx: u64,
    /// Session token the operation targeted (0 for `open` before the
    /// token exists and for global `stats`). For `open`, the token the
    /// server assigned — replays remap it.
    pub session: u64,
    /// Wire verb (`open`, `check_motion`, `reset`, `stats`, `close`).
    pub verb: String,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// Start time as nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Wall time from write to parsed reply.
    pub duration_ns: u64,
    /// Outcome: `ok`, `retry_after`, or `err`.
    pub status: String,
    /// Session tag from the recorder, e.g. `conn0/trace2` — stable across
    /// replays where the server-assigned token is not.
    pub tag: String,
    /// Full request payload text as sent on the wire.
    pub request: String,
    /// Full response payload text as received (final reply after any
    /// `retry_after` rounds).
    pub response: String,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str, line: usize) -> Result<String, OplogError> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(OplogError::Malformed {
                    line,
                    reason: format!("bad escape sequence \\{other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn header_lines(meta: &OplogMeta) -> String {
    format!(
        "{OPLOG_MAGIC}\n# meta seed {}\n# meta workload {}\n# meta scale {}\n{OPLOG_HEADER}\n",
        meta.seed,
        esc(&meta.workload),
        esc(&meta.scale)
    )
}

fn record_line(op: &OpRecord) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        op.idx,
        op.session,
        op.verb,
        op.bytes,
        op.start_ns,
        op.duration_ns,
        op.status,
        esc(&op.tag),
        esc(&op.request),
        esc(&op.response)
    )
}

/// Renders records as TSV with the self-describing header.
pub fn write_oplog(meta: &OplogMeta, ops: &[OpRecord]) -> String {
    let mut out = header_lines(meta);
    out.reserve(ops.len() * 96);
    for op in ops {
        let _ = writeln!(out, "{}", record_line(op));
    }
    out
}

/// Streaming op-log writer: emits the version/metadata/column header up
/// front, appends one TSV line per record, and flushes on drop — so a run
/// that is interrupted (or a caller that forgets the final flush) still
/// leaves a parseable log on disk.
#[derive(Debug)]
pub struct OplogWriter<W: Write> {
    out: io::BufWriter<W>,
    records: u64,
}

impl<W: Write> OplogWriter<W> {
    /// Wraps `sink` and writes the header block for `meta`.
    ///
    /// # Errors
    ///
    /// Any write failure.
    pub fn new(sink: W, meta: &OplogMeta) -> io::Result<Self> {
        let mut out = io::BufWriter::new(sink);
        out.write_all(header_lines(meta).as_bytes())?;
        Ok(OplogWriter { out, records: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Any write failure.
    pub fn record(&mut self, op: &OpRecord) -> io::Result<()> {
        writeln!(self.out, "{}", record_line(op))?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far (excluding the header).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered lines to the sink.
    ///
    /// # Errors
    ///
    /// Any flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl<W: Write> Drop for OplogWriter<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Renders periodic stats snapshots as the op-log's sidecar TSV:
/// `elapsed_ns` plus one column per stat key, keys taken from the first
/// snapshot (all snapshots of one run share the server's fixed key
/// order). Empty input renders an empty string.
pub fn write_stats_tsv(snapshots: &[StatsSnapshot]) -> String {
    let Some(first) = snapshots.first() else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str("elapsed_ns");
    for (k, _) in &first.stats {
        out.push('\t');
        out.push_str(k);
    }
    out.push('\n');
    for snap in snapshots {
        let _ = write!(out, "{}", snap.elapsed_ns);
        for (k, _) in &first.stats {
            let v = snap
                .stats
                .iter()
                .find(|(key, _)| key == k)
                .map_or("", |(_, v)| v.as_str());
            out.push('\t');
            out.push_str(v);
        }
        out.push('\n');
    }
    out
}

/// Parses a TSV op-log back into its metadata and records.
///
/// # Errors
///
/// [`OplogError::Empty`] for no input, [`OplogError::VersionMismatch`]
/// when the first line is not [`OPLOG_MAGIC`] (pre-v2 logs land here),
/// [`OplogError::MissingMeta`] when a mandatory `# meta` key is absent,
/// and [`OplogError::Malformed`] for a bad column header, wrong column
/// count, unparseable number, or bad escape. Unknown `# meta` keys and
/// other `#` comment lines are ignored for forward compatibility.
pub fn parse_oplog(text: &str) -> Result<(OplogMeta, Vec<OpRecord>), OplogError> {
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(OplogError::Empty);
    };
    if first != OPLOG_MAGIC {
        return Err(OplogError::VersionMismatch {
            found: first.to_string(),
        });
    }
    let (mut seed, mut workload, mut scale) = (None, None, None);
    let mut header_seen = false;
    let mut ops = Vec::new();
    for (i, line) in lines {
        let ln = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# meta ") {
            let (key, raw) = rest.split_once(' ').ok_or_else(|| OplogError::Malformed {
                line: ln,
                reason: format!("meta line without a value: {line:?}"),
            })?;
            let value = unesc(raw, ln)?;
            match key {
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|_| OplogError::Malformed {
                        line: ln,
                        reason: format!("bad seed {value:?}"),
                    })?);
                }
                "workload" => workload = Some(value),
                "scale" => scale = Some(value),
                _ => {} // forward compatibility: later versions may add keys
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if !header_seen {
            if line != OPLOG_HEADER {
                return Err(OplogError::Malformed {
                    line: ln,
                    reason: format!("bad column header: {line:?}"),
                });
            }
            header_seen = true;
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 10 {
            return Err(OplogError::Malformed {
                line: ln,
                reason: format!("want 10 columns, got {}", cols.len()),
            });
        }
        let num = |j: usize, what: &str| -> Result<u64, OplogError> {
            cols[j].parse().map_err(|_| OplogError::Malformed {
                line: ln,
                reason: format!("bad {what} {:?}", cols[j]),
            })
        };
        ops.push(OpRecord {
            idx: num(0, "idx")?,
            session: num(1, "session")?,
            verb: cols[2].to_string(),
            bytes: num(3, "bytes")?,
            start_ns: num(4, "start_ns")?,
            duration_ns: num(5, "duration_ns")?,
            status: cols[6].to_string(),
            tag: unesc(cols[7], ln)?,
            request: unesc(cols[8], ln)?,
            response: unesc(cols[9], ln)?,
        });
    }
    let meta = OplogMeta {
        seed: seed.ok_or(OplogError::MissingMeta { key: "seed" })?,
        workload: workload.ok_or(OplogError::MissingMeta { key: "workload" })?,
        scale: scale.ok_or(OplogError::MissingMeta { key: "scale" })?,
    };
    if !header_seen {
        return Err(OplogError::Malformed {
            line: 0,
            reason: "missing column header".to_string(),
        });
    }
    Ok((meta, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> OplogMeta {
        OplogMeta {
            seed: 42,
            workload: "MPNet-2D".to_string(),
            scale: "queries=3 connections=1".to_string(),
        }
    }

    fn sample() -> Vec<OpRecord> {
        vec![
            OpRecord {
                idx: 0,
                session: 1,
                verb: "open".into(),
                bytes: 24,
                start_ns: 0,
                duration_ns: 81_233,
                status: "ok".into(),
                tag: "conn0/trace0".into(),
                request: "open planar-2d 2 coord 7\n".into(),
                response: "ok session 1 warm 0\n".into(),
            },
            OpRecord {
                idx: 1,
                session: 3,
                verb: "check_motion".into(),
                bytes: 4_096,
                start_ns: 90_000,
                duration_ns: 1_502_118,
                status: "retry_after".into(),
                tag: "conn1/trace2".into(),
                request: "check_motion 3 1\nmotion M0 2 1\n0.5\t0.25\n".into(),
                response: "ok results 1\nresult 0 1 2 8\n".into(),
            },
        ]
    }

    #[test]
    fn tsv_roundtrip_preserves_meta_and_payloads() {
        let ops = sample();
        let text = write_oplog(&meta(), &ops);
        assert!(text.starts_with(OPLOG_MAGIC));
        let (m, back) = parse_oplog(&text).expect("parse");
        assert_eq!(m, meta());
        assert_eq!(back, ops);
        // Multi-line payloads with embedded tabs stayed one record per line.
        assert_eq!(text.lines().count(), 5 + ops.len());
    }

    #[test]
    fn streaming_writer_matches_batch_writer_and_flushes_on_drop() {
        let ops = sample();
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut w = OplogWriter::new(&mut buf, &meta()).expect("header");
            for op in &ops {
                w.record(op).expect("record");
            }
            assert_eq!(w.records(), 2);
            // No explicit flush: the drop must leave a complete log.
        }
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text, write_oplog(&meta(), &ops));
        assert_eq!(parse_oplog(&text).expect("parse").1, ops);
    }

    #[test]
    fn empty_streaming_log_is_parseable() {
        let mut buf: Vec<u8> = Vec::new();
        {
            let _w = OplogWriter::new(&mut buf, &meta()).expect("header");
        }
        let text = String::from_utf8(buf).expect("utf8");
        let (m, ops) = parse_oplog(&text).expect("parse");
        assert_eq!(m, meta());
        assert_eq!(ops, vec![]);
    }

    #[test]
    fn escaping_roundtrips_hostile_strings() {
        let mut m = meta();
        m.workload = "tabs\tand\nnewlines \\ backslash\r".to_string();
        let mut ops = sample();
        ops[0].tag = "\\n is not a newline".to_string();
        ops[0].request = "a\tb\nc\\d\re".to_string();
        let text = write_oplog(&m, &ops);
        let (back_m, back) = parse_oplog(&text).expect("parse");
        assert_eq!(back_m, m);
        assert_eq!(back, ops);
    }

    #[test]
    fn stats_tsv_has_header_and_aligned_columns() {
        let snaps = vec![
            StatsSnapshot {
                elapsed_ns: 1_000,
                stats: vec![
                    ("checks".into(), "10".into()),
                    ("cdqs_issued".into(), "40".into()),
                ],
            },
            StatsSnapshot {
                elapsed_ns: 2_000,
                stats: vec![
                    ("checks".into(), "25".into()),
                    ("cdqs_issued".into(), "90".into()),
                ],
            },
        ];
        let text = write_stats_tsv(&snaps);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "elapsed_ns\tchecks\tcdqs_issued");
        assert_eq!(lines[1], "1000\t10\t40");
        assert_eq!(lines[2], "2000\t25\t90");
        assert_eq!(lines.len(), 3);
        assert_eq!(write_stats_tsv(&[]), "");
    }

    #[test]
    fn version_mismatch_and_missing_meta_are_structured_errors() {
        assert_eq!(parse_oplog("").unwrap_err(), OplogError::Empty);
        // A v1 log (column header first) is a version mismatch, not a panic.
        let v1 =
            "idx\tsession\tverb\tbytes\tstart_ns\tduration_ns\tstatus\n0\t0\topen\t1\t2\t3\tok\n";
        assert!(matches!(
            parse_oplog(v1).unwrap_err(),
            OplogError::VersionMismatch { .. }
        ));
        assert!(matches!(
            parse_oplog("# copred-oplog v3\n").unwrap_err(),
            OplogError::VersionMismatch { .. }
        ));
        // Metadata-less logs are rejected with the missing key.
        let no_meta = format!("{OPLOG_MAGIC}\n{OPLOG_HEADER}\n");
        assert_eq!(
            parse_oplog(&no_meta).unwrap_err(),
            OplogError::MissingMeta { key: "seed" }
        );
        let partial = format!("{OPLOG_MAGIC}\n# meta seed 1\n# meta workload w\n{OPLOG_HEADER}\n");
        assert_eq!(
            parse_oplog(&partial).unwrap_err(),
            OplogError::MissingMeta { key: "scale" }
        );
    }

    #[test]
    fn malformed_logs_are_rejected() {
        let head = header_lines(&meta());
        let text = format!("{head}1\t2\tcheck\n");
        assert!(matches!(
            parse_oplog(&text).unwrap_err(),
            OplogError::Malformed { line: 6, .. }
        ));
        let text = format!("{head}x\t0\topen\t1\t2\t3\tok\tt\tq\tr\n");
        let err = parse_oplog(&text).unwrap_err();
        assert!(err.to_string().contains("bad idx"), "{err}");
        // Bad escape in a payload column.
        let text = format!("{head}0\t0\topen\t1\t2\t3\tok\tt\tbad\\x\tr\n");
        assert!(matches!(
            parse_oplog(&text).unwrap_err(),
            OplogError::Malformed { .. }
        ));
        // Bad seed value.
        let text = format!("{OPLOG_MAGIC}\n# meta seed nope\n");
        assert!(matches!(
            parse_oplog(&text).unwrap_err(),
            OplogError::Malformed { .. }
        ));
        // Missing column header entirely.
        let text = format!("{OPLOG_MAGIC}\n# meta seed 1\n# meta workload w\n# meta scale s\n");
        assert!(matches!(
            parse_oplog(&text).unwrap_err(),
            OplogError::Malformed { line: 0, .. }
        ));
    }
}
