//! Lock-free service metrics: counters, latency quantiles, and the
//! per-session prediction-quality numbers the paper reports (precision and
//! recall of the CHT, CDQs issued versus saved).
//!
//! Everything here is atomics so the hot path — worker threads recording a
//! batch — never takes a lock; the STATS verb reads a relaxed snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: 4 exact low buckets plus 4 sub-buckets per
/// octave for the 62 octaves whose values are ≥ 4.
const HIST_BUCKETS: usize = 4 + 62 * 4;

/// A traced sample displaces a bucket's exemplar once the stored one is
/// this many traced records old, even if it was slower — tail-sampling
/// must stay *recent* so the trace id still resolves in the flight
/// recorder and span buffers.
const EXEMPLAR_STALE_AFTER: u64 = 1024;

/// One bucket's exemplar slot: the trace id and value of the worst recent
/// traced sample that landed in the bucket. Writes go through a seqlock
/// (odd `version` = write in progress) so concurrent workers never
/// publish a torn (value, trace) pair; both sides are wait-free — a
/// contended writer simply skips (exemplars are best-effort), a reader
/// retries a bounded number of times.
#[derive(Debug, Default)]
struct ExemplarSlot {
    /// 0 = never written; odd = write in progress.
    version: AtomicU64,
    /// Sample value in nanoseconds.
    value: AtomicU64,
    /// Trace id, split across two words.
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
    /// Traced-record sequence number at the time of the write.
    stamp: AtomicU64,
}

impl ExemplarSlot {
    /// Best-effort write; loses gracefully under contention.
    fn offer(&self, ns: u64, trace: u128, stamp: u64) -> bool {
        let v = self.version.load(Ordering::Relaxed);
        if v & 1 == 1 {
            return false;
        }
        if v != 0 {
            let cur_val = self.value.load(Ordering::Relaxed);
            let cur_stamp = self.stamp.load(Ordering::Relaxed);
            let stale = stamp.saturating_sub(cur_stamp) > EXEMPLAR_STALE_AFTER;
            if ns < cur_val && !stale {
                return false;
            }
        }
        if self
            .version
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.value.store(ns, Ordering::Relaxed);
        self.trace_hi.store((trace >> 64) as u64, Ordering::Relaxed);
        self.trace_lo.store(trace as u64, Ordering::Relaxed);
        self.stamp.store(stamp, Ordering::Relaxed);
        self.version.store(v + 2, Ordering::Release);
        true
    }

    /// Coherent read, or `None` when empty or under sustained contention.
    fn read(&self) -> Option<(u64, u128)> {
        for _ in 0..8 {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 == 0 {
                return None;
            }
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let ns = self.value.load(Ordering::Relaxed);
            let hi = self.trace_hi.load(Ordering::Relaxed);
            let lo = self.trace_lo.load(Ordering::Relaxed);
            if self.version.load(Ordering::Acquire) == v1 {
                return Some((ns, ((hi as u128) << 64) | lo as u128));
            }
        }
        None
    }
}

/// Streaming log-linear latency histogram (HDR-style): values 0–3 ns get
/// exact buckets, every larger octave `[2^k, 2^(k+1))` is split into 4
/// linear sub-buckets. Quantiles are read as the inclusive upper bound of
/// the bucket holding the requested rank, which bounds the relative error
/// by 5/4 (worst case at a sub-bucket's lower edge; ~2^0.25 ≈ 1.19×
/// typical) — a 2× improvement over the old one-bucket-per-octave layout,
/// still lock-free and allocation-free on the record path.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of all recorded samples (for Prometheus `_sum`).
    sum: AtomicU64,
    /// Per-bucket tail-sampling exemplars (worst recent traced sample).
    exemplars: [ExemplarSlot; HIST_BUCKETS],
    /// Traced samples seen (recency stamps for exemplar replacement).
    traced_seq: AtomicU64,
    /// Successful exemplar slot writes.
    exemplar_writes: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| ExemplarSlot::default()),
            traced_seq: AtomicU64::new(0),
            exemplar_writes: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < 4 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize;
        let sub = ((ns >> (msb - 2)) & 3) as usize;
        4 + (msb - 2) * 4 + sub
    }

    /// Inclusive upper bound of bucket `i` — the largest value mapping to
    /// it. Reporting the inclusive bound keeps the error contract tight at
    /// sub-bucket edges (an exclusive bound would exceed 5/4× for a sample
    /// sitting exactly on one).
    fn bucket_bound(i: usize) -> u64 {
        if i < 4 {
            return i as u64;
        }
        let octave = (i - 4) / 4;
        let sub = ((i - 4) % 4) as u128;
        let bound = ((sub + 5) << octave) - 1;
        u64::try_from(bound).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one sample carrying a causal trace id, offering it as the
    /// bucket's exemplar. `trace` 0 degrades to a plain [`record`](Self::record).
    pub fn record_traced(&self, ns: u64, trace: u128) {
        self.record(ns);
        if trace == 0 {
            return;
        }
        let stamp = self.traced_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.exemplars[Self::bucket_of(ns)].offer(ns, trace, stamp) {
            self.exemplar_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Successful exemplar slot updates (for `copred_trace_exemplars_total`).
    pub fn exemplar_count(&self) -> u64 {
        self.exemplar_writes.load(Ordering::Relaxed)
    }

    /// The exemplar attached to the `q`-quantile: the traced sample from
    /// the quantile's bucket, falling back to the nearest bucket above
    /// (deeper in the tail), then the nearest below. Returns the sample's
    /// value (ns) and trace id.
    pub fn quantile_exemplar(&self, q: f64) -> Option<(u64, u128)> {
        let i = self.quantile_bucket(q)?;
        for j in i..HIST_BUCKETS {
            if let Some(found) = self.exemplars[j].read() {
                return Some(found);
            }
        }
        for j in (0..i).rev() {
            if let Some(found) = self.exemplars[j].read() {
                return Some(found);
            }
        }
        None
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Index of the bucket holding the `q`-quantile sample, or `None`
    /// when empty. `q` is clamped into `[0, 1]`.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(HIST_BUCKETS - 1)
    }

    /// Inclusive upper bound (ns) of the bucket holding the `q`-quantile
    /// sample, or `None` when empty. `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bucket(q).map(Self::bucket_bound)
    }
}

/// Per-session counters, owned by the registry entry and updated by
/// whichever worker executes the session's batches.
#[derive(Debug, Default)]
pub struct SessionMetrics {
    /// Motion/pose checks completed.
    pub checks: AtomicU64,
    /// CDQs actually executed.
    pub cdqs_issued: AtomicU64,
    /// CDQs the checked motions decomposed into.
    pub cdqs_total: AtomicU64,
    /// Checks that found a collision.
    pub collisions: AtomicU64,
    /// Predictor said colliding, CDQ was colliding.
    pub true_pos: AtomicU64,
    /// Predictor said colliding, CDQ was free.
    pub false_pos: AtomicU64,
    /// Predictor said free, CDQ was free.
    pub true_neg: AtomicU64,
    /// Predictor said free, CDQ was colliding.
    pub false_neg: AtomicU64,
}

impl SessionMetrics {
    /// CDQs skipped thanks to early exit: declared minus executed.
    pub fn cdqs_saved(&self) -> u64 {
        self.cdqs_total
            .load(Ordering::Relaxed)
            .saturating_sub(self.cdqs_issued.load(Ordering::Relaxed))
    }

    /// Fraction of collision predictions that were right, or `None` when
    /// the predictor never fired.
    pub fn precision(&self) -> Option<f64> {
        let tp = self.true_pos.load(Ordering::Relaxed);
        let fp = self.false_pos.load(Ordering::Relaxed);
        (tp + fp > 0).then(|| tp as f64 / (tp + fp) as f64)
    }

    /// Fraction of actually colliding CDQs the predictor flagged, or
    /// `None` when no executed CDQ collided.
    pub fn recall(&self) -> Option<f64> {
        let tp = self.true_pos.load(Ordering::Relaxed);
        let fneg = self.false_neg.load(Ordering::Relaxed);
        (tp + fneg > 0).then(|| tp as f64 / (tp + fneg) as f64)
    }

    /// Renders the ordered key/value pairs for a `stats <session>` reply.
    pub fn stat_lines(&self, mode: &str, occupancy: usize) -> Vec<(String, String)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed).to_string();
        let frac = |o: Option<f64>| o.map_or_else(|| "nan".to_string(), |v| format!("{v:.6}"));
        vec![
            ("mode".into(), mode.to_string()),
            ("checks".into(), g(&self.checks)),
            ("cdqs_issued".into(), g(&self.cdqs_issued)),
            ("cdqs_total".into(), g(&self.cdqs_total)),
            ("cdqs_saved".into(), self.cdqs_saved().to_string()),
            ("collisions".into(), g(&self.collisions)),
            ("true_pos".into(), g(&self.true_pos)),
            ("false_pos".into(), g(&self.false_pos)),
            ("true_neg".into(), g(&self.true_neg)),
            ("false_neg".into(), g(&self.false_neg)),
            ("precision".into(), frac(self.precision())),
            ("recall".into(), frac(self.recall())),
            ("cht_occupancy".into(), occupancy.to_string()),
        ]
    }
}

/// Server-wide counters plus the check-latency histogram.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Sessions ever opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by the client.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the LRU cap.
    pub sessions_evicted: AtomicU64,
    /// Requests parsed and dispatched.
    pub requests: AtomicU64,
    /// Requests rejected as malformed.
    pub bad_requests: AtomicU64,
    /// Requests bounced with `retry_after` backpressure.
    pub rejected: AtomicU64,
    /// Motion/pose checks completed across all sessions.
    pub checks: AtomicU64,
    /// CDQs executed across all sessions.
    pub cdqs_issued: AtomicU64,
    /// CDQs declared across all sessions.
    pub cdqs_total: AtomicU64,
    /// Sum of the CHT occupancy of evicted shards — learned state thrown
    /// away (or, with the store enabled, persisted) by LRU pressure.
    pub evicted_learned: AtomicU64,
    /// Check requests that carried a `trace` token.
    pub traced_requests: AtomicU64,
    /// Flight-recorder dumps served on demand (`dump` op, `/debug/flight`).
    pub flight_dumps: AtomicU64,
    /// Flight-recorder dumps fired by the latency threshold.
    pub flight_auto_dumps: AtomicU64,
    /// End-to-end check-batch service latency (enqueue → reply built).
    pub check_latency: LatencyHistogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the ordered key/value pairs for a global `stats` reply.
    pub fn stat_lines(&self, sessions_open: usize) -> Vec<(String, String)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed).to_string();
        let q = |p: f64| {
            self.check_latency
                .quantile(p)
                .map_or_else(|| "nan".into(), |v| v.to_string())
        };
        vec![
            ("sessions_open".into(), sessions_open.to_string()),
            ("sessions_opened".into(), g(&self.sessions_opened)),
            ("sessions_closed".into(), g(&self.sessions_closed)),
            ("sessions_evicted".into(), g(&self.sessions_evicted)),
            ("requests".into(), g(&self.requests)),
            ("bad_requests".into(), g(&self.bad_requests)),
            ("rejected".into(), g(&self.rejected)),
            ("checks".into(), g(&self.checks)),
            ("cdqs_issued".into(), g(&self.cdqs_issued)),
            ("cdqs_total".into(), g(&self.cdqs_total)),
            ("evicted_learned".into(), g(&self.evicted_learned)),
            (
                "cdqs_saved".into(),
                self.cdqs_total
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.cdqs_issued.load(Ordering::Relaxed))
                    .to_string(),
            ),
            (
                "latency_samples".into(),
                self.check_latency.count().to_string(),
            ),
            ("latency_p50_ns".into(), q(0.50)),
            ("latency_p95_ns".into(), q(0.95)),
            ("latency_p99_ns".into(), q(0.99)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_linear() {
        let h = LatencyHistogram::new();
        // Exact low buckets.
        for v in 0..4u64 {
            assert_eq!(LatencyHistogram::bucket_of(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_of(v) as u64, v);
        }
        // 4 sub-buckets per octave: 4..7 land in 4..=7, 8..15 in 8..=11.
        assert_eq!(LatencyHistogram::bucket_of(4), 4);
        assert_eq!(LatencyHistogram::bucket_of(7), 7);
        assert_eq!(LatencyHistogram::bucket_of(8), 8);
        assert_eq!(LatencyHistogram::bucket_of(9), 8);
        assert_eq!(LatencyHistogram::bucket_of(15), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every value maps into range, bounds are monotone, and each
        // value is ≤ its bucket's inclusive bound.
        let mut prev = 0u64;
        for i in 0..HIST_BUCKETS {
            let b = LatencyHistogram::bucket_bound(i);
            assert!(i == 0 || b > prev, "bounds must increase at {i}");
            prev = b;
            assert_eq!(
                LatencyHistogram::bucket_of(b),
                i,
                "bound {b} must map back to its bucket"
            );
        }
        assert_eq!(LatencyHistogram::bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_track_ranks() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        assert!(
            (1_000..2_048).contains(&p50),
            "p50 in the fast bucket, got {p50}"
        );
        assert!(p95 >= 1_000_000, "p95 in the slow bucket, got {p95}");
        assert!(h.quantile(0.0).unwrap() <= p50);
    }

    #[test]
    fn quantile_bounds_are_inclusive() {
        // Regression (tightened with the log-linear layout): the reported
        // bound must be the inclusive largest value of the sample's bucket
        // — an exclusive bound exceeds the error contract right at bucket
        // edges and reports 1 ns for a histogram holding only zeros. The
        // contract itself tightened from 2× (one bucket per octave) to
        // 5/4× (4 sub-buckets per octave).
        let zeros = LatencyHistogram::new();
        zeros.record(0);
        assert_eq!(zeros.quantile(1.0), Some(0));
        let ones = LatencyHistogram::new();
        ones.record(1);
        assert_eq!(ones.quantile(1.0), Some(1));
        for v in [
            1u64,
            2,
            3,
            4,
            5,
            7,
            8,
            1_000,
            1_024,
            1_025,
            999_999,
            1 << 20,
            (1 << 20) + 1,
            (5 << 18) - 1,
            5 << 18,
            u64::MAX,
        ] {
            let h = LatencyHistogram::new();
            h.record(v);
            let b = h.quantile(0.5).unwrap();
            assert!(
                v <= b && (b as f64) < 1.25 * v as f64,
                "bound {b} for sample {v} breaks the ≤5/4× contract"
            );
        }
    }

    #[test]
    fn exemplars_track_worst_recent_sample_per_bucket() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_exemplar(0.99), None);
        // Untraced samples never set exemplars.
        h.record(1_000_000);
        assert_eq!(h.quantile_exemplar(0.99), None);
        // A traced sample lands; the quantile exemplar resolves to it.
        h.record_traced(1_000_000, 0xAA);
        assert_eq!(h.quantile_exemplar(0.99), Some((1_000_000, 0xAA)));
        assert_eq!(h.exemplar_count(), 1);
        // A slower sample in the same bucket displaces it; a faster one
        // does not (until staleness).
        h.record_traced(1_100_000, 0xBB);
        assert_eq!(h.quantile_exemplar(0.99), Some((1_100_000, 0xBB)));
        h.record_traced(1_050_000, 0xCC);
        assert_eq!(h.quantile_exemplar(0.99), Some((1_100_000, 0xBB)));
        // Zero trace degrades to a plain record.
        h.record_traced(2_000_000, 0);
        assert_eq!(h.quantile_exemplar(1.0), Some((1_100_000, 0xBB)));
    }

    #[test]
    fn stale_exemplars_yield_to_recent_samples() {
        let h = LatencyHistogram::new();
        h.record_traced(1_000_000, 0xAA);
        // Age the slot past the staleness horizon with traced samples in
        // a different bucket, then offer a *faster* sample to the first.
        for _ in 0..(EXEMPLAR_STALE_AFTER + 1) {
            h.record_traced(10, 0xDD);
        }
        h.record_traced(950_000, 0xEE);
        // 950_000 and 1_000_000 share log-linear bucket? bucket_of puts
        // them both in the same octave sub-bucket — the stale 0xAA must
        // have been displaced by the recent 0xEE.
        assert_eq!(
            LatencyHistogram::bucket_of(950_000),
            LatencyHistogram::bucket_of(1_000_000)
        );
        let (ns, trace) = h.quantile_exemplar(1.0).unwrap();
        assert_eq!((ns, trace), (950_000, 0xEE));
    }

    #[test]
    fn exemplar_pairs_stay_coherent_under_concurrent_writers() {
        // Each writer records traced samples whose trace id is a pure
        // function of the value; a torn (value, trace) publication would
        // break that invariant for readers.
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let derive = |ns: u64| ((ns as u128) << 64) | 0x5EED;
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            writers.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // All values land in one bucket family around 1 ms so
                    // the writers genuinely contend per slot.
                    let ns = 1_000_000 + ((t * 5_000 + i) % 190_000);
                    h.record_traced(ns, derive(ns));
                }
            }));
        }
        let reader = {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..20_000 {
                    if let Some((ns, trace)) = h.quantile_exemplar(0.99) {
                        assert_eq!(trace, derive(ns), "torn exemplar: ns {ns} trace {trace:x}");
                        seen += 1;
                    }
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0, "reader observed exemplars");
        let (ns, trace) = h.quantile_exemplar(0.99).expect("final exemplar");
        assert_eq!(trace, derive(ns));
        assert!(h.exemplar_count() > 0);
    }

    #[test]
    fn histogram_sum_accumulates() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(990);
        h.record(0);
        assert_eq!(h.sum_ns(), 1_000);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn precision_recall_edges() {
        let m = SessionMetrics::default();
        assert_eq!(m.precision(), None);
        assert_eq!(m.recall(), None);
        m.true_pos.store(3, Ordering::Relaxed);
        m.false_pos.store(1, Ordering::Relaxed);
        m.false_neg.store(1, Ordering::Relaxed);
        assert_eq!(m.precision(), Some(0.75));
        assert_eq!(m.recall(), Some(0.75));
        m.cdqs_total.store(10, Ordering::Relaxed);
        m.cdqs_issued.store(4, Ordering::Relaxed);
        assert_eq!(m.cdqs_saved(), 6);
    }

    #[test]
    fn stat_lines_are_parseable_pairs() {
        let m = Metrics::new();
        m.check_latency.record(5_000);
        let kv = m.stat_lines(2);
        assert!(kv.iter().any(|(k, v)| k == "sessions_open" && v == "2"));
        assert!(kv.iter().any(|(k, _)| k == "latency_p99_ns"));
        for (k, v) in &kv {
            assert!(!k.contains(' ') && !v.is_empty(), "{k}={v}");
        }
    }
}
