//! The TCP server: accept loop, per-connection readers, and a bounded
//! worker pool with explicit backpressure.
//!
//! Check batches are not executed on the connection thread: they are
//! enqueued on a bounded global queue and drained by `workers` threads
//! running the predictor-ordered scheduler. Two bounds protect the pool —
//! a per-session pending cap (one planner flooding its session cannot
//! starve the rest) and the global queue capacity. Hitting either bound
//! returns `err retry_after <ms>` immediately instead of stalling or
//! dropping the connection: load shedding is part of the protocol.

use crate::metrics::Metrics;
use crate::prom::render_prometheus;
use crate::protocol::{CheckResult, Request, Response, SchedMode, ServiceError};
use crate::session::{ChtPredictor, SessionRegistry, SessionState, TimedPredictor};
use copred_collision::{run_predicted_schedule, run_schedule, Schedule};
use copred_core::ChtParams;
use copred_obs::{stage, Stage, TraceId, TraceScope};
use copred_trace::frame::{read_text_frame, write_text_frame};
use copred_trace::MotionTrace;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads draining the check queue.
    pub workers: usize,
    /// Global bounded-queue capacity (jobs, i.e. batches).
    pub queue_capacity: usize,
    /// Max jobs queued or executing per session before backpressure.
    pub session_queue_cap: usize,
    /// Session-pool capacity (must be a power of two).
    pub max_sessions: usize,
    /// CHT geometry for every leased shard.
    pub cht_params: ChtParams,
    /// CSP stride used by the scheduler.
    pub csp_step: usize,
    /// Suggested client back-off carried in `retry_after` responses.
    pub retry_after_ms: u64,
    /// Test hook: artificial per-job delay in the workers, used to force
    /// queue overflow deterministically. 0 in production.
    pub worker_delay_ms: u64,
    /// When set, serve Prometheus text exposition on `GET /metrics` at
    /// this address (plain HTTP, port 0 allowed). `None` disables the
    /// endpoint.
    pub metrics_addr: Option<String>,
    /// When set, persist CHT shards (snapshot + WAL) under this directory
    /// and warm-start sessions whose `open` carries a matching environment
    /// fingerprint. `None` disables persistence.
    pub store_dir: Option<String>,
    /// When set, enable span recording, retain recent spans in memory, and
    /// write flight + Chrome-trace dumps (`flight-<n>.json`,
    /// `trace-<n>.json`) into this directory on every `dump` op or
    /// auto-dump. `None` keeps dumps in-memory only (`/debug/flight`
    /// still works).
    pub trace_dump: Option<String>,
    /// Latency threshold (milliseconds) above which a check batch trips an
    /// automatic flight dump, rate-limited to one per second. 0 disables
    /// auto-dumps.
    pub flight_threshold_ms: u64,
    /// Run the continuous-profiling sampler thread (`copred-profiler`).
    /// Stage frames are published by workers either way — this only
    /// controls whether anything reads them. The `ab=1` loadgen harness
    /// turns it off on the baseline arm to measure sampler overhead.
    pub profile_sampler: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 128,
            session_queue_cap: 32,
            max_sessions: 64,
            cht_params: ChtParams::paper_arm(),
            csp_step: Schedule::DEFAULT_CSP_STEP,
            retry_after_ms: 10,
            worker_delay_ms: 0,
            metrics_addr: None,
            store_dir: None,
            trace_dump: None,
            flight_threshold_ms: 0,
            profile_sampler: true,
        }
    }
}

/// One enqueued check batch.
struct Job {
    session: Arc<SessionState>,
    motions: Vec<MotionTrace>,
    reply: SyncSender<Vec<CheckResult>>,
    enqueued: Instant,
    /// Causal trace id carried by the request (restored as the worker's
    /// current trace while the batch runs).
    trace: Option<TraceId>,
}

/// Bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, rejecting (never
/// blocking) on overflow so producers can translate fullness into
/// protocol-level backpressure.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            jobs: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
            shutdown: AtomicBool::new(false),
        }
    }

    /// Enqueues without blocking; hands the job back when full.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.jobs.lock().expect("queue lock");
        if q.len() >= self.capacity {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` means shutdown.
    fn pop(&self) -> Option<Job> {
        let mut q = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.ready.wait(q).expect("queue wait");
        }
    }

    /// Jobs currently waiting (excludes executing ones).
    fn len(&self) -> usize {
        self.jobs.lock().expect("queue lock").len()
    }

    fn close(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// Spans retained for dump export when `trace_dump` is set (events; the
/// oldest are trimmed first).
const SPAN_RETENTION: usize = 1 << 16;

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    registry: SessionRegistry,
    metrics: Metrics,
    queue: JobQueue,
    config: ServerConfig,
    /// Recent span events, retained by the drain thread when `trace_dump`
    /// is set; `None` otherwise.
    spans: Option<Mutex<VecDeque<copred_obs::Event>>>,
    /// Monotonic dump file counter (`flight-<n>.json` / `trace-<n>.json`).
    dump_seq: AtomicU64,
    /// Milliseconds since `started` of the last auto-dump plus one
    /// (0 = never), for the one-per-second rate limit.
    last_auto_dump_ms: AtomicU64,
    /// Process-start instant anchoring `last_auto_dump_ms`.
    started: Instant,
    /// The continuous-profiling sampler (`None` with `profile_sampler`
    /// off — the A/B baseline arm). Joined when the last `Shared`
    /// reference drops.
    sampler: Option<copred_obs::Sampler>,
}

/// The profile accumulated so far: a live copy from the sampler, or the
/// empty profile when the sampler is disabled (every export then renders
/// its zero/empty shape).
fn current_profile(shared: &Shared) -> copred_obs::Profile {
    shared
        .sampler
        .as_ref()
        .map_or_else(copred_obs::Profile::default, |s| s.snapshot())
}

/// Rate-limited automatic flight dump: at most one per second, triggered
/// by a check batch exceeding the latency threshold.
fn maybe_auto_dump(shared: &Shared) {
    let now_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX - 1) + 1;
    let last = shared.last_auto_dump_ms.load(Ordering::Relaxed);
    if last != 0 && now_ms.saturating_sub(last) < 1000 {
        return;
    }
    if shared
        .last_auto_dump_ms
        .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        dump_flight(shared, true);
    }
}

/// Pulls freshly recorded spans into the bounded retention buffer. Called
/// by the retention thread and before every dump export.
fn retain_spans(shared: &Shared) {
    let Some(spans) = &shared.spans else {
        return;
    };
    let batch = copred_obs::drain_events();
    if batch.is_empty() {
        return;
    }
    let mut buf = spans.lock().expect("span retention lock");
    buf.extend(batch);
    while buf.len() > SPAN_RETENTION {
        buf.pop_front();
    }
}

/// Dumps the flight recorder (and, with `trace_dump` set, the retained
/// spans as a Chrome trace with a self-profile section plus the folded
/// stacks as `profile-<n>.folded`) and returns the number of flight
/// entries.
fn dump_flight(shared: &Shared, auto: bool) -> u64 {
    let entries = copred_obs::flight_snapshot();
    if auto {
        shared
            .metrics
            .flight_auto_dumps
            .fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.flight_dumps.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(dir) = shared.config.trace_dump.as_deref() {
        retain_spans(shared);
        let n = shared.dump_seq.fetch_add(1, Ordering::Relaxed);
        let _ = std::fs::create_dir_all(dir);
        let flight_path = std::path::Path::new(dir).join(format!("flight-{n}.json"));
        let _ = std::fs::write(flight_path, copred_obs::flight_json(&entries));
        let profile = current_profile(shared);
        if let Some(spans) = &shared.spans {
            let events: Vec<copred_obs::Event> = {
                let buf = spans.lock().expect("span retention lock");
                buf.iter().copied().collect()
            };
            let trace_path = std::path::Path::new(dir).join(format!("trace-{n}.json"));
            let _ = std::fs::write(
                trace_path,
                copred_obs::chrome_trace_json_with_profile(&events, &profile),
            );
        }
        let folded_path = std::path::Path::new(dir).join(format!("profile-{n}.folded"));
        let _ = std::fs::write(folded_path, profile.folded());
    }
    entries.len() as u64
}

/// Renders the `/metrics` page from the shared state.
fn render_shared(shared: &Shared) -> String {
    render_prometheus(
        &shared.metrics,
        &shared.registry.sessions_snapshot(),
        shared.queue.len(),
        &shared.registry.store_stats(),
        &current_profile(shared).snapshot(),
    )
}

/// A running copred service. Dropping the handle shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    metrics_server: Option<copred_obs::MetricsServer>,
    retain_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    ///
    /// # Panics
    ///
    /// Panics when `config.max_sessions` is not a power of two or
    /// `config.workers` is zero.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Open (and create) the store root before anything is spawned so a
        // bad directory fails the whole start cleanly.
        let store = match config.store_dir.as_deref() {
            Some(dir) => Some(Arc::new(copred_store::StoreRegistry::open(dir)?)),
            None => None,
        };
        if config.trace_dump.is_some() {
            // Dump export needs spans to retain; the flight recorder
            // itself is always on.
            copred_obs::enable();
        }
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new_with_store(
                config.cht_params,
                config.max_sessions,
                store,
            ),
            metrics: Metrics::new(),
            queue: JobQueue::new(config.queue_capacity),
            spans: config
                .trace_dump
                .as_ref()
                .map(|_| Mutex::new(VecDeque::with_capacity(1024))),
            dump_seq: AtomicU64::new(0),
            last_auto_dump_ms: AtomicU64::new(0),
            started: Instant::now(),
            sampler: config
                .profile_sampler
                .then(|| copred_obs::Sampler::start(copred_obs::DEFAULT_SAMPLE_INTERVAL)),
            config,
        });
        let stopping = Arc::new(AtomicBool::new(false));

        // Bind the metrics endpoint before spawning workers so a bad
        // metrics address fails the whole start cleanly.
        let metrics_server = match shared.config.metrics_addr.clone() {
            Some(addr) => {
                let render_shared_state = Arc::clone(&shared);
                let flight_shared = Arc::clone(&shared);
                let profile_shared = Arc::clone(&shared);
                Some(copred_obs::MetricsServer::start_with_routes(
                    &addr,
                    vec![
                        (
                            "/metrics".to_string(),
                            Arc::new(move || render_shared(&render_shared_state)),
                        ),
                        (
                            "/debug/flight".to_string(),
                            Arc::new(move || {
                                flight_shared
                                    .metrics
                                    .flight_dumps
                                    .fetch_add(1, Ordering::Relaxed);
                                copred_obs::flight_json(&copred_obs::flight_snapshot())
                            }),
                        ),
                        (
                            "/debug/profile".to_string(),
                            Arc::new(move || current_profile(&profile_shared).render_text()),
                        ),
                    ],
                )?)
            }
            None => None,
        };

        // With trace_dump set, a low-rate drain keeps the span rings from
        // overflowing between dumps.
        let retain_handle = if shared.spans.is_some() {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            Some(
                thread::Builder::new()
                    .name("copred-span-retain".to_string())
                    .spawn(move || {
                        while !stopping.load(Ordering::Acquire) {
                            thread::sleep(Duration::from_millis(50));
                            retain_spans(&shared);
                        }
                    })
                    .expect("spawn span retention"),
            )
        } else {
            None
        };

        let worker_handles = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("copred-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let stopping = Arc::clone(&stopping);
            thread::Builder::new()
                .name("copred-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &stopping))
                .expect("spawn accept loop")
        };

        Ok(Server {
            shared,
            local_addr,
            stopping,
            accept_handle: Some(accept_handle),
            worker_handles,
            metrics_server,
            retain_handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server-wide metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The bound address of the `/metrics` endpoint, when one is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|m| m.local_addr())
    }

    /// Renders the Prometheus exposition page from live state — the same
    /// bytes a `GET /metrics` scrape returns.
    pub fn render_prometheus(&self) -> String {
        render_shared(&self.shared)
    }

    /// A copy of the continuous profile accumulated so far (empty when
    /// `profile_sampler` is off). The same data backs `/debug/profile`,
    /// the `copred_profile_*` series, and `profile-<n>.folded` dumps.
    pub fn profile(&self) -> copred_obs::Profile {
        current_profile(&self.shared)
    }

    /// Stops accepting, drains the workers, and joins them. Connection
    /// handler threads exit when their peers disconnect.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(mut m) = self.metrics_server.take() {
            m.shutdown();
        }
        if let Some(h) = self.retain_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, stopping: &Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stopping.load(Ordering::Acquire) {
                    return;
                }
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("copred-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(_) if stopping.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_text_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean disconnect
            Err(_) => {
                // Framing is broken; the stream cannot be resynchronized.
                let resp = Response::Error(ServiceError::BadRequest("bad frame".into()));
                let _ = write_text_frame(&mut writer, &resp.to_text());
                return;
            }
        };
        // The decode span is timed before the trace id is known (it is
        // parsed out of the payload), so it is emitted explicitly after
        // the trace scope is entered — that way it, too, carries the id.
        let decode_start = copred_obs::timestamp_ns();
        let decode_t0 = Instant::now();
        let parsed = {
            let _decode = stage(Stage::Decode);
            Request::from_text(&payload)
        };
        let decode_ns = u64::try_from(decode_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trace = match &parsed {
            Ok(Request::CheckMotion { trace, .. }) | Ok(Request::CheckPose { trace, .. }) => *trace,
            _ => None,
        };
        let _trace_scope = TraceScope::enter(trace);
        if trace.is_some() {
            shared
                .metrics
                .traced_requests
                .fetch_add(1, Ordering::Relaxed);
        }
        if copred_obs::enabled() {
            copred_obs::span_at("service", "decode", decode_start, decode_ns);
        }
        let response = match parsed {
            Ok(req) => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                dispatch(req, shared)
            }
            Err(reason) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                Response::Error(ServiceError::BadRequest(reason))
            }
        };
        let encode_span = copred_obs::span("service", "encode");
        let encode_stage = stage(Stage::Encode);
        let wrote = write_text_frame(&mut writer, &response.to_text());
        drop(encode_stage);
        drop(encode_span);
        if wrote.is_err() {
            return;
        }
    }
}

fn dispatch(req: Request, shared: &Shared) -> Response {
    match req {
        Request::Open {
            robot,
            link_count: _,
            mode,
            seed,
            fp,
        } => match shared.registry.open_full(&robot, mode, seed, fp) {
            Ok(outcome) => {
                shared
                    .metrics
                    .sessions_opened
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .sessions_evicted
                    .fetch_add(outcome.evicted as u64, Ordering::Relaxed);
                // Learned state displaced by LRU pressure is counted even
                // when the store is disabled (then it really was lost).
                shared
                    .metrics
                    .evicted_learned
                    .fetch_add(outcome.evicted_occupancy, Ordering::Relaxed);
                Response::Session {
                    id: outcome.session.id,
                    warm: outcome.warm,
                }
            }
            Err(e) => Response::Error(e),
        },
        Request::CheckMotion {
            session,
            motions,
            trace,
        } => enqueue_checks(session, motions, trace, shared),
        Request::CheckPose {
            session,
            motion,
            trace,
        } => enqueue_checks(session, vec![motion], trace, shared),
        Request::Dump => {
            let entries = dump_flight(shared, false);
            copred_obs::flight_op("dump", entries, 0);
            Response::DumpDone { entries }
        }
        Request::ResetCht { session } => match shared.registry.get(session) {
            Ok(s) => {
                s.shard.reset();
                // An explicit reset is an intent to forget: persist the
                // empty table so a later warm open does not resurrect the
                // state the client just cleared.
                s.persist_to_store();
                Response::ResetDone
            }
            Err(e) => Response::Error(e),
        },
        Request::Stats { session: None } => {
            Response::Stats(shared.metrics.stat_lines(shared.registry.len()))
        }
        Request::Stats { session: Some(id) } => match shared.registry.get(id) {
            Ok(s) => Response::Stats(s.metrics.stat_lines(s.mode.label(), s.shard.occupancy())),
            Err(e) => Response::Error(e),
        },
        Request::Close { session } => match shared.registry.close(session) {
            Ok(()) => {
                shared
                    .metrics
                    .sessions_closed
                    .fetch_add(1, Ordering::Relaxed);
                Response::Closed
            }
            Err(e) => Response::Error(e),
        },
        Request::SnapGet { fp } => match shared.registry.store() {
            Some(store) => match store.load(fp, &shared.config.cht_params) {
                Some(image) => Response::Snap {
                    fp,
                    payload: copred_store::snapshot::encode(&image),
                },
                None => Response::SnapNone { fp },
            },
            None => Response::Error(ServiceError::BadRequest(
                "snap_get needs a store-enabled server".into(),
            )),
        },
        Request::SnapSession { session } => match shared.registry.get(session) {
            Ok(s) => Response::Snap {
                fp: s.store_fp().unwrap_or(0),
                payload: copred_store::snapshot::encode(&s.table_image()),
            },
            Err(e) => Response::Error(e),
        },
        Request::SnapOffer {
            fp,
            version,
            crc,
            len: _,
        } => match shared.registry.store() {
            Some(store) => {
                // Want the push unless the stored state already encodes to
                // the offered bytes (same CRC ⇒ same bytes ⇒ merge would be
                // a no-op). Version skew is declined here, not errored: an
                // offer is a question, not a transfer.
                let have = store
                    .load(fp, &shared.config.cht_params)
                    .map(|image| copred_store::crc::crc32(&copred_store::snapshot::encode(&image)));
                let want = version == copred_store::SNAPSHOT_VERSION && have != Some(crc);
                Response::SnapWant { fp, want }
            }
            None => Response::SnapWant { fp, want: false },
        },
        Request::SnapPush {
            fp,
            version,
            crc,
            payload,
        } => receive_snap_push(shared, fp, version, crc, &payload),
    }
}

/// The receiving half of fleet snapshot replication: validates the
/// transfer (version, CRC over the bytes as received), decodes the
/// CPRDSNAP image (which re-validates its own header and payload CRC),
/// checks it targets this server's table geometry, and max-merges it into
/// the store. Every failure is a structured error response — a hostile or
/// torn transfer must leave the store exactly as it was, cold-startable,
/// with the server still serving.
fn receive_snap_push(shared: &Shared, fp: u64, version: u32, crc: u32, payload: &[u8]) -> Response {
    let fleet = crate::prom::fleet_stats();
    let reject = |message: String| {
        fleet.snapshots_rejected.fetch_add(1, Ordering::Relaxed);
        Response::Error(ServiceError::BadRequest(message))
    };
    let Some(store) = shared.registry.store() else {
        return reject("snap_push needs a store-enabled server".into());
    };
    if version != copred_store::SNAPSHOT_VERSION {
        return reject(format!(
            "snapshot version {version} not supported (want {})",
            copred_store::SNAPSHOT_VERSION
        ));
    }
    if copred_store::crc::crc32(payload) != crc {
        return reject("snapshot transfer CRC mismatch".into());
    }
    let image = match copred_store::snapshot::decode(payload) {
        Ok(image) => image,
        Err(e) => return reject(format!("snapshot rejected: {e}")),
    };
    if image.params != shared.config.cht_params {
        return reject("snapshot parameters do not match this server's table".into());
    }
    match store.merge_image(fp, &image) {
        Ok(merged) => {
            fleet.snapshots_received.fetch_add(1, Ordering::Relaxed);
            Response::SnapApplied { fp, merged }
        }
        Err(copred_store::StoreError::Leased(_)) => {
            fleet.snapshots_rejected.fetch_add(1, Ordering::Relaxed);
            Response::Error(ServiceError::Busy(format!(
                "fingerprint {fp:x} is leased by a live session"
            )))
        }
        Err(e) => reject(format!("snapshot merge failed: {e}")),
    }
}

/// Applies both backpressure bounds, enqueues, and blocks this connection
/// thread (only) until the worker replies.
fn enqueue_checks(
    session_id: u64,
    motions: Vec<MotionTrace>,
    trace: Option<TraceId>,
    shared: &Shared,
) -> Response {
    let session = match shared.registry.get(session_id) {
        Ok(s) => s,
        Err(e) => return Response::Error(e),
    };
    let retry = |message: &str| {
        shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        Response::Error(ServiceError::RetryAfter {
            ms: shared.config.retry_after_ms,
            message: message.to_string(),
        })
    };
    // Per-session bound first: a flooding session is rejected before it
    // can take global queue slots from the others.
    let prev = session.pending.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.config.session_queue_cap {
        session.pending.fetch_sub(1, Ordering::AcqRel);
        return retry("session queue full");
    }
    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    let job = Job {
        session: Arc::clone(&session),
        motions,
        reply: reply_tx,
        enqueued: Instant::now(),
        trace,
    };
    if shared.queue.try_push(job).is_err() {
        session.pending.fetch_sub(1, Ordering::AcqRel);
        return retry("server queue full");
    }
    match reply_rx.recv() {
        // The echo mirrors the request token exactly: absent stays absent,
        // so untraced responses keep the legacy wire bytes.
        Ok(results) => Response::Results { results, trace },
        // Worker pool shut down mid-request.
        Err(_) => Response::Error(ServiceError::Busy("server shutting down".into())),
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Blocking on the queue is published as a queue_wait frame so the
        // profiler can separate waiting-for-work from doing it.
        let job = {
            let _wait = stage(Stage::QueueWait);
            match shared.queue.pop() {
                Some(job) => job,
                None => return,
            }
        };
        if copred_obs::enabled() {
            copred_obs::counter("service", "queue_depth", shared.queue.len() as u64);
        }
        if shared.config.worker_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.config.worker_delay_ms));
        }
        // The worker adopts the request's trace for the batch: every span
        // and flight entry below carries it.
        let _trace_scope = TraceScope::enter(job.trace);
        let results = run_batch(&job.session, &job.motions, shared);
        job.session.pending.fetch_sub(1, Ordering::AcqRel);
        let ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .metrics
            .check_latency
            .record_traced(ns, job.trace.map_or(0, |t| t.raw()));
        copred_obs::flight_op("check", job.motions.len() as u64, ns);
        let threshold = shared.config.flight_threshold_ms;
        if threshold > 0 && ns > threshold.saturating_mul(1_000_000) {
            maybe_auto_dump(shared);
        }
        // The connection may have vanished; the work still counted.
        let _ = job.reply.send(results);
    }
}

fn run_batch(session: &SessionState, motions: &[MotionTrace], shared: &Shared) -> Vec<CheckResult> {
    motions
        .iter()
        .map(|m| {
            let schedule_span = copred_obs::span("service", "schedule");
            let schedule_stage = stage(Stage::Schedule);
            let infos = m.to_cdq_infos();
            drop(schedule_stage);
            drop(schedule_span);
            let execute_span = copred_obs::span("service", "execute");
            let execute_stage = stage(Stage::Execute);
            let out = match session.mode {
                SchedMode::Coord => {
                    let mut pred = ChtPredictor::new(session, &m.poses);
                    {
                        // Priming is the bulk of the predictor's CHT-read
                        // work: publish it as execute→predict so stage
                        // fractions separate prediction from execution.
                        let _predict_stage = stage(Stage::Predict);
                        pred.prime(&infos);
                    }
                    if copred_obs::enabled() {
                        // Wrapping the predictor keeps the inner call
                        // sequence identical to the untimed path, so
                        // results stay bit-identical while the accumulated
                        // predictor time becomes a "predict" span nested
                        // in "execute".
                        let mut timed = TimedPredictor::new(&mut pred);
                        let out = run_predicted_schedule(
                            &infos,
                            m.poses.len(),
                            shared.config.csp_step,
                            &mut timed,
                        );
                        copred_obs::span_at(
                            "service",
                            "predict",
                            execute_span.start_ns(),
                            timed.predict_ns() + timed.observe_ns(),
                        );
                        out
                    } else {
                        run_predicted_schedule(
                            &infos,
                            m.poses.len(),
                            shared.config.csp_step,
                            &mut pred,
                        )
                    }
                }
                SchedMode::Naive => run_schedule(&infos, m.poses.len(), Schedule::Naive),
                SchedMode::Csp => run_schedule(
                    &infos,
                    m.poses.len(),
                    Schedule::Csp {
                        step: shared.config.csp_step,
                    },
                ),
            };
            drop(execute_stage);
            drop(execute_span);
            let sm = &session.metrics;
            sm.checks.fetch_add(1, Ordering::Relaxed);
            sm.cdqs_issued
                .fetch_add(out.cdqs_executed as u64, Ordering::Relaxed);
            sm.cdqs_total
                .fetch_add(out.cdqs_total as u64, Ordering::Relaxed);
            sm.collisions
                .fetch_add(u64::from(out.colliding), Ordering::Relaxed);
            let gm = &shared.metrics;
            gm.checks.fetch_add(1, Ordering::Relaxed);
            gm.cdqs_issued
                .fetch_add(out.cdqs_executed as u64, Ordering::Relaxed);
            gm.cdqs_total
                .fetch_add(out.cdqs_total as u64, Ordering::Relaxed);
            CheckResult {
                colliding: out.colliding,
                cdqs_executed: out.cdqs_executed as u64,
                cdqs_total: out.cdqs_total as u64,
                obstacle_tests: out.obstacle_tests as u64,
            }
        })
        .collect()
}
