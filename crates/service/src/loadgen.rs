//! Closed- and open-loop load generation over captured planner traces.
//!
//! Each [`copred_trace::QueryTrace`] plays as one session: the generator
//! opens it, replays the trace's motion checks in batches, and closes it.
//! Traces are dealt round-robin across `connections` concurrent client
//! connections. Closed-loop mode issues the next batch as soon as the
//! previous reply lands (throughput probe); open-loop mode fires batches
//! on a fixed interval regardless of reply latency (latency-under-load
//! probe), absorbing `retry_after` backpressure by sleeping as told.
//!
//! Every wire operation is recorded as an [`OpRecord`]; the merged,
//! time-sorted log plus aggregate counters come back in a
//! [`LoadgenReport`].

use crate::client::ServiceClient;
use crate::oplog::OpRecord;
use crate::protocol::{Request, Response, SchedMode};
use copred_obs::TraceId;
use copred_trace::QueryTrace;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// One periodic sample of the server's global stats during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Nanoseconds since the run epoch when the sample returned.
    pub elapsed_ns: u64,
    /// The server's global stat key/value pairs, in server order.
    pub stats: Vec<(String, String)>,
}

/// When the generator issues the next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Issue immediately after the previous reply (one outstanding batch
    /// per connection).
    Closed,
    /// Issue on a fixed schedule of one batch per `interval_us`
    /// microseconds per connection.
    Open {
        /// Microseconds between scheduled batch starts.
        interval_us: u64,
    },
}

/// Load-generator tunables.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Scheduling mode requested for every session.
    pub mode: SchedMode,
    /// Base seed for the sessions' `U`-policy streams (combined with the
    /// trace index, so replays are deterministic).
    pub seed: u64,
    /// Closed- or open-loop issue policy.
    pub pacing: Pacing,
    /// Motions per CHECK_MOTION batch.
    pub batch: usize,
    /// Backpressure retries per batch before giving up.
    pub max_retries: usize,
    /// When set, a sampler connection polls the server's global stats on
    /// this interval (plus once at run end); the snapshots come back in
    /// [`LoadgenReport::stats_snapshots`].
    pub metrics_interval: Option<Duration>,
    /// Per-trace environment fingerprints (parallel to the trace list).
    /// When set, each `open` carries `fingerprints[trace_idx]` so a
    /// store-enabled server can warm-start matching sessions.
    pub fingerprints: Option<Vec<u64>>,
    /// Attach a deterministic causal trace id (derived from the session
    /// seed and batch index) to every check batch, and verify the server's
    /// echo.
    pub trace_ids: bool,
    /// When set, the stats sampler rewrites this sidecar TSV (atomically,
    /// temp + rename) after every snapshot, so a killed run still leaves
    /// its partial stats on disk. Requires [`Self::metrics_interval`].
    pub stats_tsv: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7457".to_string(),
            connections: 8,
            mode: SchedMode::Coord,
            seed: 1,
            pacing: Pacing::Closed,
            batch: 8,
            max_retries: 64,
            metrics_interval: None,
            fingerprints: None,
            trace_ids: false,
            stats_tsv: None,
        }
    }
}

/// What a load-generation run produced.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// All operations, sorted by start time and reindexed.
    pub ops: Vec<OpRecord>,
    /// Motion checks completed.
    pub checks: u64,
    /// Checks that reported a collision.
    pub collisions: u64,
    /// CDQs the server executed for this run (client-side sum).
    pub cdqs_issued: u64,
    /// CDQs the replayed motions declared.
    pub cdqs_total: u64,
    /// Backpressure retries absorbed.
    pub retries: u64,
    /// Sessions the server warm-started from persisted state.
    pub warm_opens: u64,
    /// Wall time of the whole run.
    pub wall_ns: u64,
    /// Periodic global-stats samples (empty unless
    /// [`LoadgenConfig::metrics_interval`] was set).
    pub stats_snapshots: Vec<StatsSnapshot>,
}

impl LoadgenReport {
    /// Checks per second over the run's wall time.
    pub fn checks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.checks as f64 * 1e9 / self.wall_ns as f64
    }
}

struct ConnOutcome {
    ops: Vec<OpRecord>,
    checks: u64,
    collisions: u64,
    cdqs_issued: u64,
    cdqs_total: u64,
    warm_opens: u64,
}

/// Replays `traces` against a running server per `config`.
///
/// # Errors
///
/// Connection failures, server-side errors, or retry exhaustion on any
/// connection abort the run.
///
/// # Panics
///
/// Panics when `config.connections` or `config.batch` is zero.
pub fn run_loadgen(config: &LoadgenConfig, traces: &[QueryTrace]) -> io::Result<LoadgenReport> {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.batch > 0, "need a positive batch size");
    let epoch = Instant::now();
    let retries = AtomicU64::new(0);
    let stop_sampler = AtomicBool::new(false);
    let (outcomes, snapshots): (Vec<io::Result<ConnOutcome>>, io::Result<Vec<StatsSnapshot>>) =
        thread::scope(|scope| {
            let sampler = config.metrics_interval.map(|interval| {
                let stop = &stop_sampler;
                scope.spawn(move || sample_stats(config, interval, epoch, stop))
            });
            let handles: Vec<_> = (0..config.connections)
                .map(|conn| {
                    let retries = &retries;
                    scope.spawn(move || run_connection(config, traces, conn, epoch, retries))
                })
                .collect();
            let outcomes = handles
                .into_iter()
                .map(|h| h.join().expect("loadgen thread panicked"))
                .collect();
            stop_sampler.store(true, Ordering::Release);
            let snapshots = sampler
                .map(|h| h.join().expect("stats sampler panicked"))
                .unwrap_or_else(|| Ok(Vec::new()));
            (outcomes, snapshots)
        });
    let mut report = LoadgenReport {
        wall_ns: elapsed_ns(epoch),
        stats_snapshots: snapshots?,
        ..LoadgenReport::default()
    };
    for outcome in outcomes {
        let o = outcome?;
        report.ops.extend(o.ops);
        report.checks += o.checks;
        report.collisions += o.collisions;
        report.cdqs_issued += o.cdqs_issued;
        report.cdqs_total += o.cdqs_total;
        report.warm_opens += o.warm_opens;
    }
    report.retries = retries.load(Ordering::Relaxed);
    report.ops.sort_by_key(|op| (op.start_ns, op.session));
    for (i, op) in report.ops.iter_mut().enumerate() {
        op.idx = i as u64;
    }
    Ok(report)
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Polls the global STATS verb on its own connection every `interval`
/// until stopped, then takes one final sample — so even a run shorter
/// than the interval yields a snapshot.
fn sample_stats(
    config: &LoadgenConfig,
    interval: Duration,
    epoch: Instant,
    stop: &AtomicBool,
) -> io::Result<Vec<StatsSnapshot>> {
    let mut client = ServiceClient::connect(&config.addr)?;
    let mut snapshots = Vec::new();
    let mut next = interval;
    loop {
        while !stop.load(Ordering::Acquire) && epoch.elapsed() < next {
            thread::sleep(Duration::from_millis(1).min(interval));
        }
        let stopping = stop.load(Ordering::Acquire);
        let stats = client.stats(None)?;
        snapshots.push(StatsSnapshot {
            elapsed_ns: elapsed_ns(epoch),
            stats,
        });
        if let Some(path) = &config.stats_tsv {
            // Rewrite the whole (small) sidecar after every sample: a
            // killed run keeps its latest complete copy, never a torn one.
            let tmp = format!("{path}.tmp");
            std::fs::write(&tmp, crate::oplog::write_stats_tsv(&snapshots))?;
            std::fs::rename(&tmp, path)?;
        }
        if stopping {
            return Ok(snapshots);
        }
        next += interval;
    }
}

fn run_connection(
    config: &LoadgenConfig,
    traces: &[QueryTrace],
    conn: usize,
    epoch: Instant,
    retries: &AtomicU64,
) -> io::Result<ConnOutcome> {
    let mut client = ServiceClient::connect(&config.addr)?;
    let mut out = ConnOutcome {
        ops: Vec::new(),
        checks: 0,
        collisions: 0,
        cdqs_issued: 0,
        cdqs_total: 0,
        warm_opens: 0,
    };
    let mut issued = 0u64; // batches issued by this connection, for open-loop pacing
    for (trace_idx, trace) in traces.iter().enumerate() {
        if trace_idx % config.connections != conn {
            continue;
        }
        // Deterministic per-trace seed: replaying the same trace list with
        // the same config reproduces every session's U stream.
        let seed = config.seed ^ ((trace_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let fp = config
            .fingerprints
            .as_ref()
            .and_then(|fps| fps.get(trace_idx).copied());
        let open_req = Request::Open {
            robot: trace.robot_name.clone(),
            link_count: trace.link_count,
            mode: config.mode,
            seed,
            fp,
        };
        let tag = format!("conn{conn}/trace{trace_idx}");
        let start = elapsed_ns(epoch);
        let (session, warm) =
            client.open_with_fp(&trace.robot_name, trace.link_count, config.mode, seed, fp)?;
        out.warm_opens += u64::from(warm);
        let resp = Response::Session { id: session, warm }.to_text();
        out.ops.push(op(
            session,
            "open",
            &tag,
            &open_req,
            resp,
            start,
            elapsed_ns(epoch),
        ));

        for (batch_idx, batch) in trace.motions.chunks(config.batch).enumerate() {
            if let Pacing::Open { interval_us } = config.pacing {
                pace(epoch, issued * interval_us * 1_000);
            }
            issued += 1;
            // Deterministic per-batch trace id: the per-trace seed is
            // already unique, so (seed, batch index) never collides.
            let trace_id = config
                .trace_ids
                .then(|| TraceId::derive(seed, batch_idx as u64));
            let req = Request::CheckMotion {
                session,
                motions: batch.to_vec(),
                trace: trace_id,
            };
            let start = elapsed_ns(epoch);
            let (results, r) =
                client.check_motions_traced(session, batch, config.max_retries, trace_id)?;
            retries.fetch_add(r as u64, Ordering::Relaxed);
            for res in &results {
                out.checks += 1;
                out.collisions += u64::from(res.colliding);
                out.cdqs_issued += res.cdqs_executed;
                out.cdqs_total += res.cdqs_total;
            }
            // Recorded as the wire response really was: with the echo.
            let resp = Response::Results {
                results,
                trace: trace_id,
            }
            .to_text();
            out.ops.push(op(
                session,
                "check_motion",
                &tag,
                &req,
                resp,
                start,
                elapsed_ns(epoch),
            ));
        }

        let req = Request::Close { session };
        let start = elapsed_ns(epoch);
        client.close(session)?;
        let resp = Response::Closed.to_text();
        out.ops.push(op(
            session,
            "close",
            &tag,
            &req,
            resp,
            start,
            elapsed_ns(epoch),
        ));
    }
    Ok(out)
}

fn pace(epoch: Instant, scheduled_ns: u64) {
    let now = elapsed_ns(epoch);
    if scheduled_ns > now {
        thread::sleep(Duration::from_nanos(scheduled_ns - now));
    }
}

fn op(
    session: u64,
    verb: &str,
    tag: &str,
    req: &Request,
    response: String,
    start_ns: u64,
    end_ns: u64,
) -> OpRecord {
    let request = req.to_text();
    OpRecord {
        idx: 0, // assigned after the global sort
        session,
        verb: verb.to_string(),
        bytes: request.len() as u64,
        start_ns,
        duration_ns: end_ns.saturating_sub(start_ns),
        status: "ok".to_string(),
        tag: tag.to_string(),
        request,
        response,
    }
}
