//! The copred-service wire protocol.
//!
//! Requests and responses are UTF-8 text payloads carried in the
//! length-prefixed frames of [`copred_trace::frame`]. The first line of a
//! payload names the verb; motion payloads reuse the `motion` block
//! encoding of [`copred_trace::MotionTrace`] verbatim, so captured traces
//! frame directly onto the wire.
//!
//! ```text
//! request                                  response
//! ------------------------------------     ---------------------------------
//! open <robot> <links> <mode> <seed>       ok session <id> warm <0|1>
//!      [fp <hex>]
//! check_motion <session> <n> \n blocks…    ok results <n> \n result … per motion
//! check_pose <session> \n one block        ok results 1 \n result …
//! reset <session>                          ok reset
//! stats [<session>]                        ok stats <n> \n <key> <value> …
//! dump                                     ok dump <entries>
//! close <session>                          ok closed
//! snap_get <fp-hex>                        ok snap <fp-hex> <len> \n <hex payload>
//!                                          ok snap_none <fp-hex>
//! snap_session <session>                   ok snap <fp-hex> <len> \n <hex payload>
//! snap_offer <fp-hex> <ver> <crc-hex> <len>  ok snap_want <fp-hex> <0|1>
//! snap_push <fp-hex> <ver> <crc-hex> <len>   ok snap_applied <fp-hex> merged <0|1>
//!           \n <hex payload>
//! (any)                                    err retry_after <ms> <message>
//! (any)                                    err <code> <message>
//! ```
//!
//! The `snap_*` verbs are the fleet replication ops: a snapshot payload is
//! a complete CPRDSNAP byte string ([`copred_store::snapshot`]), hex-coded
//! onto the wire. `snap_push` carries the transfer length and CRC
//! explicitly so a torn or corrupted transfer is rejected *before* the
//! snapshot decoder runs; the CPRDSNAP header's own version and CRC are
//! then validated by the decoder. Servers without a store answer every
//! `snap_*` op with a structured error — old clients never send them, so
//! the pre-fleet wire surface is untouched.
//!
//! Check verbs additionally accept an optional trailing `trace <hex128>`
//! token carrying a causal trace id ([`copred_obs::TraceId`]); the
//! server echoes it on the matching `ok results` line. Requests without
//! the token — and their responses — serialize byte-identically to the
//! pre-trace wire format, so old clients and recorded logs parse
//! unchanged.

use copred_obs::TraceId;
use copred_trace::MotionTrace;
use std::fmt;

/// How a session schedules the CDQs of each motion check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Predictor-ordered execution (Algorithm 1 over the session CHT).
    Coord,
    /// Sequential pose order — the paper's naive baseline.
    Naive,
    /// Coarse-step pose order without prediction.
    Csp,
}

impl SchedMode {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedMode::Coord => "coord",
            SchedMode::Naive => "naive",
            SchedMode::Csp => "csp",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "coord" => Some(SchedMode::Coord),
            "naive" => Some(SchedMode::Naive),
            "csp" => Some(SchedMode::Csp),
            _ => None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a planning session: leases a CHT shard.
    Open {
        /// Robot preset name (must match the trace's `robot_name`).
        robot: String,
        /// Links per pose.
        link_count: u32,
        /// CDQ scheduling mode for every check in the session.
        mode: SchedMode,
        /// Seed of the session's `U`-policy stream (determinism).
        seed: u64,
        /// Environment fingerprint (`copred_store::environment_fingerprint`)
        /// keying persisted CHT state. `None` opts out of warm-start and
        /// persistence; ignored by servers without a store.
        fp: Option<u64>,
    },
    /// A batch of motion checks against the session's CHT.
    CheckMotion {
        /// Session token from [`Response::Session`].
        session: u64,
        /// The motions, in issue order.
        motions: Vec<MotionTrace>,
        /// Optional causal trace id, echoed in the response. Never
        /// affects scheduling or results.
        trace: Option<TraceId>,
    },
    /// A single pose check (a one-pose motion block).
    CheckPose {
        /// Session token.
        session: u64,
        /// One-pose motion block.
        motion: MotionTrace,
        /// Optional causal trace id, echoed in the response.
        trace: Option<TraceId>,
    },
    /// Clears the session's CHT — the paper's dynamic-obstacle remap.
    ResetCht {
        /// Session token.
        session: u64,
    },
    /// Metrics snapshot: global, or one session's.
    Stats {
        /// `None` for server-wide stats.
        session: Option<u64>,
    },
    /// Dumps the server's flight recorder (admin/debug verb).
    Dump,
    /// Ends the session and releases its shard.
    Close {
        /// Session token.
        session: u64,
    },
    /// Fetches the *stored* snapshot for a fingerprint (snapshot + WAL
    /// suffix, exactly what a warm open would load), as CPRDSNAP bytes.
    SnapGet {
        /// Environment fingerprint.
        fp: u64,
    },
    /// Fetches a *live* session's table image as CPRDSNAP bytes — what the
    /// fleet router replicates mid-stream so a backend death loses no
    /// committed state.
    SnapSession {
        /// Session token.
        session: u64,
    },
    /// Asks whether the receiver wants a snapshot before it is shipped
    /// (gossip round 1): declined when the receiver already stores
    /// byte-identical state for the fingerprint.
    SnapOffer {
        /// Environment fingerprint.
        fp: u64,
        /// CPRDSNAP format version of the offered bytes.
        version: u32,
        /// CRC-32/IEEE over the full offered byte string.
        crc: u32,
        /// Offered byte count.
        len: u64,
    },
    /// Ships a snapshot (gossip round 2). The receiver validates the
    /// transfer CRC and version, decodes, and max-merges into its store.
    SnapPush {
        /// Environment fingerprint.
        fp: u64,
        /// CPRDSNAP format version of the pushed bytes.
        version: u32,
        /// CRC-32/IEEE over `payload` as transferred. Serialized as given —
        /// a mismatch with the payload is the receiver's rejection to make,
        /// not the codec's.
        crc: u32,
        /// The complete CPRDSNAP byte string.
        payload: Vec<u8>,
    },
}

/// One motion check's outcome on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckResult {
    /// Whether the motion collides.
    pub colliding: bool,
    /// CDQs executed before the check resolved.
    pub cdqs_executed: u64,
    /// CDQs the motion decomposes into.
    pub cdqs_total: u64,
    /// Obstacle-pair tests inside the executed CDQs.
    pub obstacle_tests: u64,
}

/// Machine-readable error category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Malformed or unparseable request.
    BadRequest(String),
    /// Unknown or evicted session token.
    NoSession(u64),
    /// Registry full and nothing evictable.
    Busy(String),
    /// Bounded queue full: back off and retry after the given delay.
    RetryAfter {
        /// Suggested client back-off.
        ms: u64,
        /// Which bound was hit.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::NoSession(id) => write!(f, "no such session {id}"),
            ServiceError::Busy(m) => write!(f, "busy: {m}"),
            ServiceError::RetryAfter { ms, message } => {
                write!(f, "backpressure, retry after {ms} ms: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Session {
        /// Session token.
        id: u64,
        /// Whether the session warm-started from persisted CHT state.
        warm: bool,
    },
    /// Batch results, one per motion in request order.
    Results {
        /// One result per motion, in request order.
        results: Vec<CheckResult>,
        /// Echo of the request's `trace` token (`None` when the request
        /// carried none, keeping the legacy wire form byte-identical).
        trace: Option<TraceId>,
    },
    /// CHT cleared.
    ResetDone,
    /// Metrics snapshot as ordered key/value pairs.
    Stats(Vec<(String, String)>),
    /// Flight recorder dumped; carries the number of entries captured.
    DumpDone {
        /// Flight entries in the dump.
        entries: u64,
    },
    /// Session closed.
    Closed,
    /// A snapshot payload (answer to `snap_get` / `snap_session`).
    Snap {
        /// Environment fingerprint the payload persists under (0 when the
        /// source session opened without one).
        fp: u64,
        /// The complete CPRDSNAP byte string.
        payload: Vec<u8>,
    },
    /// No stored snapshot for the fingerprint (answer to `snap_get`).
    SnapNone {
        /// Environment fingerprint.
        fp: u64,
    },
    /// Whether the receiver wants an offered snapshot.
    SnapWant {
        /// Environment fingerprint.
        fp: u64,
        /// `true` to request the push.
        want: bool,
    },
    /// A pushed snapshot was accepted and persisted.
    SnapApplied {
        /// Environment fingerprint.
        fp: u64,
        /// Whether existing stored state was max-merged in (`false` =
        /// installed fresh).
        merged: bool,
    },
    /// Request failed.
    Error(ServiceError),
}

/// Hex-codes a byte string for the wire (lowercase, two digits per byte).
fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a wire hex line produced by [`to_hex`].
fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd hex payload length".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).ok_or("non-ascii hex payload")?, 16)
                .map_err(|_| "bad hex payload".to_string())
        })
        .collect()
}

fn parse_hex_u64(tok: Option<&str>, what: &str) -> Result<u64, String> {
    let tok = tok.ok_or_else(|| format!("missing {what}"))?;
    u64::from_str_radix(tok, 16).map_err(|_| format!("bad {what} (want hex)"))
}

/// Parses the `<hex payload>` line of a snap op: exactly one line whose
/// decoded length matches the declared `len`, then end of payload.
fn parse_hex_payload<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    declared_len: u64,
) -> Result<Vec<u8>, String> {
    let line = lines.next().ok_or("missing snapshot payload")?;
    let payload = from_hex(line)?;
    if payload.len() as u64 != declared_len {
        return Err(format!(
            "snapshot payload is {} bytes, declared {declared_len}",
            payload.len()
        ));
    }
    if lines.next().is_some() {
        return Err("trailing content after snapshot payload".into());
    }
    Ok(payload)
}

fn parse_u64(tok: Option<&str>, what: &str) -> Result<u64, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

impl Request {
    /// Serializes to a frame payload.
    pub fn to_text(&self) -> String {
        match self {
            Request::Open {
                robot,
                link_count,
                mode,
                seed,
                fp,
            } => match fp {
                Some(fp) => format!(
                    "open {robot} {link_count} {} {seed} fp {fp:x}\n",
                    mode.label()
                ),
                None => format!("open {robot} {link_count} {} {seed}\n", mode.label()),
            },
            Request::CheckMotion {
                session,
                motions,
                trace,
            } => {
                let mut out = match trace {
                    Some(t) => format!("check_motion {session} {} trace {t}\n", motions.len()),
                    None => format!("check_motion {session} {}\n", motions.len()),
                };
                for m in motions {
                    m.write_text(&mut out);
                }
                out
            }
            Request::CheckPose {
                session,
                motion,
                trace,
            } => {
                let mut out = match trace {
                    Some(t) => format!("check_pose {session} trace {t}\n"),
                    None => format!("check_pose {session}\n"),
                };
                motion.write_text(&mut out);
                out
            }
            Request::ResetCht { session } => format!("reset {session}\n"),
            Request::Stats { session: None } => "stats\n".to_string(),
            Request::Stats { session: Some(id) } => format!("stats {id}\n"),
            Request::Dump => "dump\n".to_string(),
            Request::Close { session } => format!("close {session}\n"),
            Request::SnapGet { fp } => format!("snap_get {fp:x}\n"),
            Request::SnapSession { session } => format!("snap_session {session}\n"),
            Request::SnapOffer {
                fp,
                version,
                crc,
                len,
            } => format!("snap_offer {fp:x} {version} {crc:x} {len}\n"),
            Request::SnapPush {
                fp,
                version,
                crc,
                payload,
            } => format!(
                "snap_push {fp:x} {version} {crc:x} {}\n{}\n",
                payload.len(),
                to_hex(payload)
            ),
        }
    }

    /// Parses a frame payload. All malformed input returns `Err` with a
    /// human-readable reason (never panics) — the server maps it to
    /// [`ServiceError::BadRequest`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, head) = lines.next().ok_or("empty request")?;
        let mut f = head.split_whitespace();
        let verb = f.next().ok_or("blank request line")?;
        match verb {
            "open" => {
                let robot = f.next().ok_or("missing robot name")?.to_string();
                let link_count = parse_u64(f.next(), "link count")? as u32;
                let mode = SchedMode::parse(f.next().ok_or("missing mode")?)
                    .ok_or("bad mode (want coord|naive|csp)")?;
                let seed = parse_u64(f.next(), "seed")?;
                let fp = match f.next() {
                    None => None,
                    Some("fp") => {
                        let hex = f.next().ok_or("missing fp value")?;
                        Some(
                            u64::from_str_radix(hex, 16)
                                .map_err(|_| "bad fp (want hex)".to_string())?,
                        )
                    }
                    Some(other) => return Err(format!("unexpected token '{other}' after seed")),
                };
                if let Some(extra) = f.next() {
                    return Err(format!("unexpected token '{extra}' after fp"));
                }
                Ok(Request::Open {
                    robot,
                    link_count,
                    mode,
                    seed,
                    fp,
                })
            }
            "check_motion" => {
                let session = parse_u64(f.next(), "session")?;
                let n = parse_u64(f.next(), "motion count")? as usize;
                let trace = parse_trace_token(&mut f, "motion count")?;
                if n == 0 {
                    return Err("empty motion batch".into());
                }
                if n > MAX_BATCH {
                    return Err(format!("batch of {n} exceeds MAX_BATCH ({MAX_BATCH})"));
                }
                let mut motions = Vec::with_capacity(n);
                for _ in 0..n {
                    let (ln, header) = lines.next().ok_or("truncated motion batch")?;
                    motions.push(
                        copred_trace::parse_motion_block(ln, header, &mut lines)
                            .map_err(|e| e.to_string())?,
                    );
                }
                if lines.next().is_some() {
                    return Err("trailing content after motion batch".into());
                }
                Ok(Request::CheckMotion {
                    session,
                    motions,
                    trace,
                })
            }
            "check_pose" => {
                let session = parse_u64(f.next(), "session")?;
                let trace = parse_trace_token(&mut f, "session")?;
                let (ln, header) = lines.next().ok_or("missing pose block")?;
                let motion = copred_trace::parse_motion_block(ln, header, &mut lines)
                    .map_err(|e| e.to_string())?;
                if motion.poses.len() != 1 {
                    return Err("check_pose wants exactly one pose".into());
                }
                if lines.next().is_some() {
                    return Err("trailing content after pose block".into());
                }
                Ok(Request::CheckPose {
                    session,
                    motion,
                    trace,
                })
            }
            "reset" => Ok(Request::ResetCht {
                session: parse_u64(f.next(), "session")?,
            }),
            "stats" => match f.next() {
                None => Ok(Request::Stats { session: None }),
                Some(tok) => {
                    let id = tok.parse().map_err(|_| "bad session".to_string())?;
                    Ok(Request::Stats { session: Some(id) })
                }
            },
            "dump" => {
                if let Some(extra) = f.next() {
                    return Err(format!("unexpected token '{extra}' after dump"));
                }
                Ok(Request::Dump)
            }
            "close" => Ok(Request::Close {
                session: parse_u64(f.next(), "session")?,
            }),
            "snap_get" => {
                let fp = parse_hex_u64(f.next(), "fp")?;
                reject_extra(&mut f, "fp")?;
                Ok(Request::SnapGet { fp })
            }
            "snap_session" => {
                let session = parse_u64(f.next(), "session")?;
                reject_extra(&mut f, "session")?;
                Ok(Request::SnapSession { session })
            }
            "snap_offer" => {
                let fp = parse_hex_u64(f.next(), "fp")?;
                let version = parse_u64(f.next(), "snapshot version")? as u32;
                let crc = parse_hex_u64(f.next(), "transfer crc")? as u32;
                let len = parse_u64(f.next(), "payload length")?;
                reject_extra(&mut f, "payload length")?;
                Ok(Request::SnapOffer {
                    fp,
                    version,
                    crc,
                    len,
                })
            }
            "snap_push" => {
                let fp = parse_hex_u64(f.next(), "fp")?;
                let version = parse_u64(f.next(), "snapshot version")? as u32;
                let crc = parse_hex_u64(f.next(), "transfer crc")? as u32;
                let len = parse_u64(f.next(), "payload length")?;
                reject_extra(&mut f, "payload length")?;
                let mut rest = lines.map(|(_, l)| l);
                let payload = parse_hex_payload(&mut rest, len)?;
                Ok(Request::SnapPush {
                    fp,
                    version,
                    crc,
                    payload,
                })
            }
            other => Err(format!("unknown verb '{other}'")),
        }
    }
}

/// Rejects any further token on the line; `after` names the last expected
/// field for the error message.
fn reject_extra<'a>(f: &mut impl Iterator<Item = &'a str>, after: &str) -> Result<(), String> {
    match f.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected token '{extra}' after {after}")),
    }
}

/// Parses the optional trailing `trace <hex128>` token (then end of
/// line). `after` names the preceding field for error messages.
fn parse_trace_token<'a>(
    f: &mut impl Iterator<Item = &'a str>,
    after: &str,
) -> Result<Option<TraceId>, String> {
    match f.next() {
        None => Ok(None),
        Some("trace") => {
            let hex = f.next().ok_or("missing trace value")?;
            let id = TraceId::from_hex(hex)
                .ok_or_else(|| "bad trace (want 32 hex digits, nonzero)".to_string())?;
            match f.next() {
                None => Ok(Some(id)),
                Some(extra) => Err(format!("unexpected token '{extra}' after trace")),
            }
        }
        Some(other) => Err(format!("unexpected token '{other}' after {after}")),
    }
}

/// Largest motion batch accepted in one CHECK_MOTION frame.
pub const MAX_BATCH: usize = 4096;

impl Response {
    /// Serializes to a frame payload.
    pub fn to_text(&self) -> String {
        match self {
            Response::Session { id, warm } => {
                format!("ok session {id} warm {}\n", u8::from(*warm))
            }
            Response::Results { results, trace } => {
                let mut out = match trace {
                    Some(t) => format!("ok results {} trace {t}\n", results.len()),
                    None => format!("ok results {}\n", results.len()),
                };
                for r in results {
                    out.push_str(&format!(
                        "result {} {} {} {}\n",
                        u8::from(r.colliding),
                        r.cdqs_executed,
                        r.cdqs_total,
                        r.obstacle_tests
                    ));
                }
                out
            }
            Response::ResetDone => "ok reset\n".to_string(),
            Response::Stats(kv) => {
                let mut out = format!("ok stats {}\n", kv.len());
                for (k, v) in kv {
                    out.push_str(&format!("{k} {v}\n"));
                }
                out
            }
            Response::DumpDone { entries } => format!("ok dump {entries}\n"),
            Response::Closed => "ok closed\n".to_string(),
            Response::Snap { fp, payload } => {
                format!("ok snap {fp:x} {}\n{}\n", payload.len(), to_hex(payload))
            }
            Response::SnapNone { fp } => format!("ok snap_none {fp:x}\n"),
            Response::SnapWant { fp, want } => {
                format!("ok snap_want {fp:x} {}\n", u8::from(*want))
            }
            Response::SnapApplied { fp, merged } => {
                format!("ok snap_applied {fp:x} merged {}\n", u8::from(*merged))
            }
            Response::Error(ServiceError::RetryAfter { ms, message }) => {
                format!("err retry_after {ms} {message}\n")
            }
            Response::Error(ServiceError::BadRequest(m)) => format!("err bad_request {m}\n"),
            Response::Error(ServiceError::NoSession(id)) => format!("err no_session {id}\n"),
            Response::Error(ServiceError::Busy(m)) => format!("err busy {m}\n"),
        }
    }

    /// Parses a frame payload (the client side).
    ///
    /// # Errors
    ///
    /// Returns a reason string for malformed payloads.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let head = lines.next().ok_or("empty response")?;
        let mut f = head.split_whitespace();
        match f.next() {
            Some("ok") => match f.next() {
                Some("session") => {
                    let id = parse_u64(f.next(), "session id")?;
                    // `warm <0|1>` is optional so pre-store servers still
                    // parse; absence means a cold session.
                    let warm = match f.next() {
                        None => false,
                        Some("warm") => parse_u64(f.next(), "warm flag")? != 0,
                        Some(other) => {
                            return Err(format!("unexpected token '{other}' after session id"))
                        }
                    };
                    Ok(Response::Session { id, warm })
                }
                Some("results") => {
                    let n = parse_u64(f.next(), "result count")? as usize;
                    let trace = parse_trace_token(&mut f, "result count")?;
                    if n > MAX_BATCH {
                        return Err("result count exceeds MAX_BATCH".into());
                    }
                    let mut rs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let line = lines.next().ok_or("truncated results")?;
                        let mut g = line.split_whitespace();
                        if g.next() != Some("result") {
                            return Err("expected 'result' line".into());
                        }
                        let colliding = parse_u64(g.next(), "colliding flag")? != 0;
                        rs.push(CheckResult {
                            colliding,
                            cdqs_executed: parse_u64(g.next(), "cdqs executed")?,
                            cdqs_total: parse_u64(g.next(), "cdqs total")?,
                            obstacle_tests: parse_u64(g.next(), "obstacle tests")?,
                        });
                    }
                    Ok(Response::Results { results: rs, trace })
                }
                Some("reset") => Ok(Response::ResetDone),
                Some("dump") => Ok(Response::DumpDone {
                    entries: parse_u64(f.next(), "dump entry count")?,
                }),
                Some("stats") => {
                    let n = parse_u64(f.next(), "stat count")? as usize;
                    if n > 4096 {
                        return Err("stat count too large".into());
                    }
                    let mut kv = Vec::with_capacity(n);
                    for _ in 0..n {
                        let line = lines.next().ok_or("truncated stats")?;
                        let (k, v) = line.split_once(' ').ok_or("stat line without value")?;
                        kv.push((k.to_string(), v.to_string()));
                    }
                    Ok(Response::Stats(kv))
                }
                Some("closed") => Ok(Response::Closed),
                Some("snap") => {
                    let fp = parse_hex_u64(f.next(), "fp")?;
                    let len = parse_u64(f.next(), "payload length")?;
                    reject_extra(&mut f, "payload length")?;
                    let payload = parse_hex_payload(&mut lines, len)?;
                    Ok(Response::Snap { fp, payload })
                }
                Some("snap_none") => {
                    let fp = parse_hex_u64(f.next(), "fp")?;
                    reject_extra(&mut f, "fp")?;
                    Ok(Response::SnapNone { fp })
                }
                Some("snap_want") => {
                    let fp = parse_hex_u64(f.next(), "fp")?;
                    let want = parse_u64(f.next(), "want flag")? != 0;
                    reject_extra(&mut f, "want flag")?;
                    Ok(Response::SnapWant { fp, want })
                }
                Some("snap_applied") => {
                    let fp = parse_hex_u64(f.next(), "fp")?;
                    if f.next() != Some("merged") {
                        return Err("expected 'merged' after fp".into());
                    }
                    let merged = parse_u64(f.next(), "merged flag")? != 0;
                    reject_extra(&mut f, "merged flag")?;
                    Ok(Response::SnapApplied { fp, merged })
                }
                _ => Err("unknown ok form".into()),
            },
            Some("err") => match f.next() {
                Some("retry_after") => {
                    let ms = parse_u64(f.next(), "retry delay")?;
                    let message = f.collect::<Vec<_>>().join(" ");
                    Ok(Response::Error(ServiceError::RetryAfter { ms, message }))
                }
                Some("bad_request") => Ok(Response::Error(ServiceError::BadRequest(
                    f.collect::<Vec<_>>().join(" "),
                ))),
                Some("no_session") => Ok(Response::Error(ServiceError::NoSession(parse_u64(
                    f.next(),
                    "session id",
                )?))),
                Some("busy") => Ok(Response::Error(ServiceError::Busy(
                    f.collect::<Vec<_>>().join(" "),
                ))),
                _ => Err("unknown err code".into()),
            },
            _ => Err("response must start with ok/err".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_kinematics::Config;
    use copred_trace::TraceCdq;

    fn motion() -> MotionTrace {
        MotionTrace {
            stage: copred_trace::Stage::Explore,
            poses: vec![Config::new(vec![0.1, -0.2]), Config::new(vec![0.3, 0.4])],
            cdqs: vec![
                TraceCdq {
                    pose_idx: 0,
                    link_idx: 0,
                    center: copred_geometry::Vec3::new(0.1, 0.2, 0.3),
                    colliding: false,
                    obstacle_tests: 3,
                },
                TraceCdq {
                    pose_idx: 1,
                    link_idx: 0,
                    center: copred_geometry::Vec3::new(-0.1, 0.0, 0.9),
                    colliding: true,
                    obstacle_tests: 1,
                },
            ],
        }
    }

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request::Open {
                robot: "planar-2d".into(),
                link_count: 1,
                mode: SchedMode::Coord,
                seed: 42,
                fp: None,
            },
            Request::Open {
                robot: "jaco2".into(),
                link_count: 7,
                mode: SchedMode::Coord,
                seed: 9,
                fp: Some(0xDEAD_BEEF_0042),
            },
            Request::CheckMotion {
                session: 7,
                motions: vec![motion(), motion()],
                trace: None,
            },
            Request::CheckMotion {
                session: 7,
                motions: vec![motion()],
                trace: TraceId::new(0xFACE_0FF0_1234),
            },
            Request::CheckPose {
                session: 7,
                motion: MotionTrace {
                    poses: vec![Config::new(vec![0.0, 0.0])],
                    ..motion()
                }
                .tap_single_pose(),
                trace: None,
            },
            Request::CheckPose {
                session: 7,
                motion: MotionTrace {
                    poses: vec![Config::new(vec![0.0, 0.0])],
                    ..motion()
                }
                .tap_single_pose(),
                trace: TraceId::new(u128::MAX),
            },
            Request::ResetCht { session: 7 },
            Request::Stats { session: None },
            Request::Stats { session: Some(9) },
            Request::Dump,
            Request::Close { session: 7 },
            Request::SnapGet { fp: 0xFACE_0042 },
            Request::SnapSession { session: 7 },
            Request::SnapOffer {
                fp: 0xFACE_0042,
                version: 1,
                crc: 0xDEAD_BEEF,
                len: 52,
            },
            Request::SnapPush {
                fp: 0xFACE_0042,
                version: 1,
                crc: 0x1234_5678,
                payload: vec![0x00, 0x7f, 0xff, 0x10],
            },
            Request::SnapPush {
                fp: 1,
                version: 9,
                crc: 0,
                payload: vec![],
            },
        ];
        for r in reqs {
            let text = r.to_text();
            assert_eq!(Request::from_text(&text).expect("parse"), r, "{text}");
        }
    }

    /// Helper trait so the test can build a valid single-pose block.
    trait TapSingle {
        fn tap_single_pose(self) -> MotionTrace;
    }
    impl TapSingle for MotionTrace {
        fn tap_single_pose(mut self) -> MotionTrace {
            self.cdqs.truncate(1);
            self.cdqs[0].pose_idx = 0;
            self
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::Session { id: 3, warm: false },
            Response::Session { id: 4, warm: true },
            Response::Results {
                results: vec![CheckResult {
                    colliding: true,
                    cdqs_executed: 4,
                    cdqs_total: 17,
                    obstacle_tests: 12,
                }],
                trace: None,
            },
            Response::Results {
                results: vec![CheckResult {
                    colliding: false,
                    cdqs_executed: 1,
                    cdqs_total: 2,
                    obstacle_tests: 3,
                }],
                trace: TraceId::new(0xC0FFEE),
            },
            Response::ResetDone,
            Response::DumpDone { entries: 37 },
            Response::Stats(vec![
                ("cdqs_issued".into(), "120".into()),
                ("precision".into(), "0.9375".into()),
            ]),
            Response::Closed,
            Response::Snap {
                fp: 0xFACE_0042,
                payload: vec![0xCA, 0xFE, 0x00, 0x01],
            },
            Response::Snap {
                fp: 2,
                payload: vec![],
            },
            Response::SnapNone { fp: 0xFACE_0042 },
            Response::SnapWant {
                fp: 0xFACE_0042,
                want: true,
            },
            Response::SnapWant { fp: 3, want: false },
            Response::SnapApplied {
                fp: 0xFACE_0042,
                merged: true,
            },
            Response::SnapApplied {
                fp: 4,
                merged: false,
            },
            Response::Error(ServiceError::RetryAfter {
                ms: 12,
                message: "session queue full".into(),
            }),
            Response::Error(ServiceError::BadRequest("bad stage label".into())),
            Response::Error(ServiceError::NoSession(99)),
            Response::Error(ServiceError::Busy("no evictable session".into())),
        ];
        for r in resps {
            let text = r.to_text();
            assert_eq!(Response::from_text(&text).expect("parse"), r, "{text}");
        }
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            "",
            "open",
            "open r",
            "open r 1 warp 3",
            "open r 1 coord 3 junk",
            "open r 1 coord 3 fp",
            "open r 1 coord 3 fp zz",
            "open r 1 coord 3 fp 1f 9",
            "check_motion 1",
            "check_motion 1 2\nmotion S1 0 0\n",
            "check_motion 1 99999999\n",
            "check_pose 1\nmotion S1 2 0\npose 0.0\npose 0.0\n",
            "reset",
            "close nope",
            "warp 9",
            "check_motion 1 1\nmotion S1 1 1\npose 0.0\ncdq 9 0 0 0 0 1 1\n",
            "dump 3",
            "check_motion 1 1 trace\nmotion S1 1 1\npose 0.0\ncdq 0 0 0 0 0 1 1\n",
            "check_motion 1 1 trace zz\nmotion S1 1 1\npose 0.0\ncdq 0 0 0 0 0 1 1\n",
            "check_motion 1 1 trace 00000000000000000000000000000000\nmotion S1 1 1\npose 0.0\ncdq 0 0 0 0 0 1 1\n",
            "check_motion 1 1 trace ff junk\nmotion S1 1 1\npose 0.0\ncdq 0 0 0 0 0 1 1\n",
            "check_pose 1 spur\nmotion S1 1 1\npose 0.0\ncdq 0 0 0 0 0 1 1\n",
            "snap_get",
            "snap_get zz",
            "snap_get 1f 9",
            "snap_session",
            "snap_session nope",
            "snap_offer 1f",
            "snap_offer 1f 1 zz 4",
            "snap_offer 1f 1 aa 4 junk",
            "snap_push 1f 1 aa 4\n",
            "snap_push 1f 1 aa 4\nca\n",
            "snap_push 1f 1 aa 4\ncafe00\n",
            "snap_push 1f 1 aa 2\ncafe\nextra\n",
            "snap_push 1f 1 aa 2\ncafg\n",
            "snap_push 1f 1 aa 3\ncafe0\n",
        ] {
            assert!(Request::from_text(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn snap_push_wire_crc_is_carried_not_recomputed() {
        // The codec ships the declared transfer CRC verbatim: a push whose
        // CRC does not match its payload must round-trip intact so the
        // *receiver* can reject it as a structured transfer error.
        let req = Request::SnapPush {
            fp: 0xAB,
            version: 1,
            crc: 0xBAD0_CAFE, // deliberately not crc32(payload)
            payload: vec![1, 2, 3],
        };
        assert_eq!(Request::from_text(&req.to_text()).unwrap(), req);
    }

    #[test]
    fn absent_trace_token_keeps_legacy_wire_bytes() {
        // Property over seeded batches: a traceless request/response pair
        // must serialize to exactly the pre-trace wire form — no token,
        // no reordered fields — and a traced pair round-trips its id.
        let mut seed = 0x7AC3u64;
        for _ in 0..200 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let session = seed % 512;
            let req = Request::CheckMotion {
                session,
                motions: vec![motion()],
                trace: None,
            };
            let text = req.to_text();
            let head = text.lines().next().unwrap();
            assert_eq!(head, format!("check_motion {session} 1"), "legacy head");
            assert_eq!(Request::from_text(&text).unwrap(), req);

            let id = TraceId::derive(seed, 1);
            let traced = Request::CheckMotion {
                session,
                motions: vec![motion()],
                trace: Some(id),
            };
            let ttext = traced.to_text();
            let thead = ttext.lines().next().unwrap();
            assert_eq!(thead, format!("check_motion {session} 1 trace {id}"));
            assert_eq!(Request::from_text(&ttext).unwrap(), traced);

            let resp = Response::Results {
                results: vec![],
                trace: None,
            };
            assert_eq!(resp.to_text(), "ok results 0\n", "legacy results line");
            let traced_resp = Response::Results {
                results: vec![],
                trace: Some(id),
            };
            assert_eq!(traced_resp.to_text(), format!("ok results 0 trace {id}\n"));
            assert_eq!(
                Response::from_text(&traced_resp.to_text()).unwrap(),
                traced_resp
            );
        }
    }

    #[test]
    fn legacy_session_ack_parses_as_cold() {
        // A pre-store server says just `ok session <id>`; the flag-less
        // form must keep parsing and means "cold".
        assert_eq!(
            Response::from_text("ok session 12\n").unwrap(),
            Response::Session {
                id: 12,
                warm: false
            }
        );
        assert!(Response::from_text("ok session 12 tepid 1\n").is_err());
    }

    #[test]
    fn batch_payload_reuses_trace_encoding() {
        let m = motion();
        let req = Request::CheckMotion {
            session: 1,
            motions: vec![m.clone()],
            trace: None,
        };
        let text = req.to_text();
        assert!(
            text.contains(&m.to_text()),
            "motion block embedded verbatim"
        );
    }
}
