//! copred-service: a batched, session-sharded collision-prediction server.
//!
//! The paper's predictor assumes the CHT sits next to the collision
//! checker; this crate packages the same machinery behind a TCP service so
//! many planners can share one accelerator-style backend. Each planning
//! query opens a *session* that leases a private [`copred_swexec::ShardedCht`]
//! shard; motion-check batches are dispatched through a bounded worker
//! pool running the predictor-ordered scheduler
//! ([`copred_collision::run_predicted_schedule`], the paper's Algorithm 1).
//!
//! Layers, bottom-up:
//!
//! - [`protocol`] — text verbs over length-prefixed frames
//!   ([`copred_trace::frame`]); motion payloads reuse the trace encoding.
//! - [`metrics`] — atomic counters and log-linear latency histograms
//!   (p50/p95/p99 to within 5/4×), plus per-session prediction confusion
//!   counts.
//! - [`prom`] — Prometheus text exposition of those metrics; the server
//!   serves it on `GET /metrics` when configured with a metrics address.
//! - [`session`] — the session registry: shard leasing, LRU eviction,
//!   per-session bounded queues.
//! - [`server`] — accept loop, per-connection readers, worker pool with
//!   explicit backpressure (`err retry_after`).
//! - [`client`] — a small blocking client used by tests and the load
//!   generator.
//! - [`loadgen`] + [`oplog`] — closed-/open-loop load generation over
//!   captured [`copred_trace::QueryTrace`] workloads with a
//!   self-describing TSV op-log that records full request/response
//!   payloads (the `copred-replay` crate's lossless TSV interchange).

pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod oplog;
pub mod prom;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::ServiceClient;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, Pacing, StatsSnapshot};
pub use metrics::{LatencyHistogram, Metrics, SessionMetrics};
pub use oplog::{
    parse_oplog, write_oplog, write_stats_tsv, OpRecord, OplogError, OplogMeta, OplogWriter,
    OPLOG_MAGIC, OPLOG_VERSION,
};
pub use prom::{
    fleet_stats, render_prometheus, replay_stats, FleetStats, ReplayStats, FLEET_COUNTERS,
    GLOBAL_COUNTERS, REPLAY_COUNTERS, SESSION_COUNTERS, STORE_COUNTERS, TRACE_COUNTERS,
};
pub use protocol::{CheckResult, Request, Response, SchedMode, ServiceError, MAX_BATCH};
pub use server::{Server, ServerConfig};
pub use session::{execute_batch, OpenOutcome, SessionRegistry, SessionState, TimedPredictor};
