//! Session registry: each open planning query leases a private shard of a
//! [`ShardedCht`] pool, so concurrent clients never alias each other's
//! collision history (the paper resets the CHT per planning query; a
//! leased shard is exactly that lifetime).
//!
//! The registry enforces a capacity cap with LRU eviction: opening a
//! session when the table is full evicts the least-recently-used *idle*
//! session (no in-flight jobs). If every session is busy the open is
//! rejected as [`ServiceError::Busy`] rather than blocking the accept
//! path.

use crate::metrics::SessionMetrics;
use crate::protocol::{CheckResult, SchedMode, ServiceError};
use copred_collision::{run_predicted_schedule, run_schedule, CdqInfo, CdqPredictor, Schedule};
use copred_core::{ChtParams, CollisionHash, CoordHash, HashInput};
use copred_kinematics::{presets, Config, Robot};
use copred_store::{SessionStore, StoreRegistry, StoreStats, TableImage};
use copred_swexec::{ConcurrentCht, ShardedCht};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Looks up a robot preset by wire name.
pub fn robot_by_name(name: &str) -> Option<Robot> {
    match name {
        "planar-2d" => Some(presets::planar_2d().into()),
        "planar-arm-2dof" => Some(presets::planar_arm_2dof().into()),
        "baxter" => Some(presets::baxter_arm().into()),
        "jaco2" => Some(presets::jaco2().into()),
        "kuka-iiwa" => Some(presets::kuka_iiwa().into()),
        _ => None,
    }
}

/// One open planning session.
#[derive(Debug)]
pub struct SessionState {
    /// Session token handed to the client.
    pub id: u64,
    /// Scheduling mode for every check in the session.
    pub mode: SchedMode,
    /// The leased CHT shard (private to this session until close/evict).
    pub shard: Arc<ConcurrentCht>,
    /// Which pool slot the shard came from (returned on release).
    shard_slot: usize,
    /// COORD hash over the session robot's workspace.
    pub hasher: CoordHash,
    /// Per-session counters.
    pub metrics: SessionMetrics,
    /// Jobs currently queued or executing for this session.
    pub pending: AtomicUsize,
    /// xorshift64 state driving the CHT's `U`-policy draws; seeded by the
    /// client so replays are deterministic.
    u_state: Mutex<u64>,
    /// LRU timestamp (registry logical clock).
    last_used: AtomicU64,
    /// Store handle when the session opened with an environment
    /// fingerprint against a store-enabled registry. `None` otherwise.
    store: Option<SessionStore>,
}

impl SessionState {
    /// Advances the session's `U`-policy stream by one draw in `[0, 1)`.
    pub fn next_u_draw(&self) -> f64 {
        let mut s = self.u_state.lock().expect("u_state lock");
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        (*s >> 11) as f64 / (1u64 << 53) as f64
    }

    fn u_state_snapshot(&self) -> u64 {
        *self.u_state.lock().expect("u_state lock")
    }

    /// A plain-memory image of the session's table *and* its `U`-draw RNG
    /// word: restoring both is what makes a warm-started session continue
    /// the exact predict/observe stream the persisted session would have.
    pub fn table_image(&self) -> TableImage {
        TableImage {
            params: *self.shard.params(),
            u_state: self.u_state_snapshot(),
            cells: self.shard.export_cells(),
        }
    }

    /// The environment fingerprint the session persists under, when it
    /// opened with one against a store-enabled registry.
    pub fn store_fp(&self) -> Option<u64> {
        self.store.as_ref().map(SessionStore::fp)
    }

    /// Persists the session's table through its store handle (no-op
    /// without one, or on a detached same-fingerprint handle). Returns
    /// whether a snapshot was written. Persistence is best-effort: an I/O
    /// failure degrades to losing the warm state, never a panic.
    pub fn persist_to_store(&self) -> bool {
        match &self.store {
            Some(store) => store.persist(&self.table_image()).unwrap_or(false),
            None => false,
        }
    }
}

/// [`CdqPredictor`] adapter binding a session's shard, hasher, and the
/// poses of the motion being checked.
///
/// Prediction quality (the confusion counters) is classified at *observe*
/// time, not predict time: under early exit a schedule consults the
/// predictor for every CDQ but executes only some of them, so counting at
/// predict would record more outcomes than `cdqs_issued` and break the
/// ledger invariant `tp + fp + tn + fn == cdqs_issued`. Predictions are
/// therefore stashed per CDQ here and consumed when (if) the CDQ runs.
pub struct ChtPredictor<'a> {
    session: &'a SessionState,
    poses: &'a [Config],
    /// `false` disables lookups entirely (naive/CSP sessions), leaving the
    /// scheduler to degrade to plain CSP order.
    enabled: bool,
    /// Latest prediction per `(pose_idx, link_idx)`, consumed at observe.
    predictions: HashMap<(usize, usize), bool>,
    /// COORD codes precomputed by [`Self::prime`], keyed like
    /// `predictions`. Empty until primed; `code` falls back to the scalar
    /// hash for any CDQ not in here.
    codes: HashMap<(usize, usize), u64>,
}

impl<'a> ChtPredictor<'a> {
    /// Binds a predictor for one motion check.
    pub fn new(session: &'a SessionState, poses: &'a [Config]) -> Self {
        ChtPredictor {
            session,
            poses,
            enabled: session.mode == SchedMode::Coord,
            predictions: HashMap::new(),
            codes: HashMap::new(),
        }
    }

    /// Precomputes the COORD code of every CDQ in `infos` with the batched
    /// hash, so the per-CDQ predict/observe calls skip scalar re-encoding
    /// (observe would otherwise encode the same center a second time).
    ///
    /// Bit-exact by construction: a COORD code depends only on the CDQ
    /// center and the session hasher — never on table state — so computing
    /// it up front cannot change any code, prediction, or ledger entry.
    pub fn prime(&mut self, infos: &[CdqInfo]) {
        if !self.enabled || infos.is_empty() {
            return;
        }
        let centers: Vec<copred_geometry::Vec3> = infos.iter().map(|c| c.center).collect();
        let mut codes = vec![0u64; centers.len()];
        self.session.hasher.code_batch(&centers, &mut codes);
        self.codes.reserve(infos.len());
        for (c, &code) in infos.iter().zip(&codes) {
            self.codes.insert((c.pose_idx, c.link_idx), code);
        }
    }

    fn code(&self, cdq: &CdqInfo) -> u64 {
        if let Some(&code) = self.codes.get(&(cdq.pose_idx, cdq.link_idx)) {
            return code;
        }
        let input = HashInput {
            config: &self.poses[cdq.pose_idx],
            center: cdq.center,
        };
        self.session.hasher.code(&input)
    }
}

impl CdqPredictor for ChtPredictor<'_> {
    fn predict(&mut self, cdq: &CdqInfo) -> bool {
        if !self.enabled {
            return false;
        }
        let predicted = self.session.shard.predict(self.code(cdq));
        self.predictions
            .insert((cdq.pose_idx, cdq.link_idx), predicted);
        predicted
    }

    fn observe(&mut self, cdq: &CdqInfo, colliding: bool) {
        if !self.enabled {
            return;
        }
        // One confusion-counter bump per executed CDQ, keyed on the
        // prediction stashed for it. A CDQ observed without a prior
        // predict call counts as a negative prediction (the scheduler's
        // default when it never consulted us).
        let predicted = self
            .predictions
            .remove(&(cdq.pose_idx, cdq.link_idx))
            .unwrap_or(false);
        let m = &self.session.metrics;
        let counter = match (predicted, colliding) {
            (true, true) => &m.true_pos,
            (true, false) => &m.false_pos,
            (false, false) => &m.true_neg,
            (false, true) => &m.false_neg,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let u = self.session.next_u_draw();
        let code = self.code(cdq);
        let applied = self.session.shard.observe(code, colliding, u);
        // WAL-log only *applied* writes (the U gate already ran), so replay
        // is RNG-free and bit-exact. The compaction closure exports the
        // live shard under the WAL lock. Best-effort: a full disk loses
        // durability, not correctness.
        if applied {
            if let Some(store) = &self.session.store {
                let _ = store.log_observe(code, colliding, || self.session.table_image());
            }
        }
    }
}

/// [`CdqPredictor`] decorator that forwards to an inner predictor while
/// estimating wall time spent in `predict` and `observe` calls.
///
/// The server wraps [`ChtPredictor`] in this only when the observability
/// recorder is enabled, then emits the estimated time as a `predict`
/// span: the inner call sequence is identical either way, so results stay
/// bit-identical to an uninstrumented run, and the disabled path never
/// reads a clock per CDQ.
///
/// Timing is *sampled*: only one call in [`Self::SAMPLE`] reads the clock
/// (calls are ~30 ns on this class of hardware, so per-call timing of a
/// per-CDQ method costs more than the method); the estimate scales the
/// sampled mean by the call count. Attribution stays within a few percent
/// on any batch big enough to matter while the enabled-path overhead drops
/// by the sampling factor.
pub struct TimedPredictor<'a, P: CdqPredictor> {
    inner: &'a mut P,
    predict_sampled_ns: u64,
    observe_sampled_ns: u64,
    predict_calls: u64,
    observe_calls: u64,
}

impl<'a, P: CdqPredictor> TimedPredictor<'a, P> {
    /// One call in this many is timed (power of two).
    pub const SAMPLE: u64 = 16;

    /// Wraps `inner` with zeroed accumulators.
    pub fn new(inner: &'a mut P) -> Self {
        TimedPredictor {
            inner,
            predict_sampled_ns: 0,
            observe_sampled_ns: 0,
            predict_calls: 0,
            observe_calls: 0,
        }
    }

    /// Estimated nanoseconds spent in `predict` calls.
    pub fn predict_ns(&self) -> u64 {
        Self::scale(self.predict_sampled_ns, self.predict_calls)
    }

    /// Estimated nanoseconds spent in `observe` calls.
    pub fn observe_ns(&self) -> u64 {
        Self::scale(self.observe_sampled_ns, self.observe_calls)
    }

    fn scale(sampled_ns: u64, calls: u64) -> u64 {
        if calls == 0 {
            return 0;
        }
        // Calls 0, SAMPLE, 2*SAMPLE, … are timed: ceil(calls / SAMPLE)
        // samples cover `calls` calls.
        let sampled = calls.div_ceil(Self::SAMPLE);
        sampled_ns.saturating_mul(calls) / sampled
    }
}

impl<P: CdqPredictor> CdqPredictor for TimedPredictor<'_, P> {
    fn predict(&mut self, cdq: &CdqInfo) -> bool {
        // Time call 0 and then every SAMPLE-th, so short batches still
        // get a measurement.
        let timed = self.predict_calls.is_multiple_of(Self::SAMPLE);
        self.predict_calls += 1;
        if !timed {
            return self.inner.predict(cdq);
        }
        let t = std::time::Instant::now();
        let r = self.inner.predict(cdq);
        self.predict_sampled_ns += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        r
    }

    fn observe(&mut self, cdq: &CdqInfo, colliding: bool) {
        let timed = self.observe_calls.is_multiple_of(Self::SAMPLE);
        self.observe_calls += 1;
        if !timed {
            return self.inner.observe(cdq, colliding);
        }
        let t = std::time::Instant::now();
        self.inner.observe(cdq, colliding);
        self.observe_sampled_ns += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
}

/// Executes one motion-check batch against a session exactly as the
/// server's worker pool does — the canonical batch semantics shared by the
/// TCP worker, the conformance harness, and the replay engine. Schedules
/// each motion per the session's [`SchedMode`], updates the session's
/// metrics (including the confusion ledger via [`ChtPredictor`] observes),
/// and returns the wire-visible [`CheckResult`]s in motion order.
pub fn execute_batch(
    session: &SessionState,
    motions: &[copred_trace::MotionTrace],
    csp_step: usize,
) -> Vec<CheckResult> {
    motions
        .iter()
        .map(|m| {
            let infos = m.to_cdq_infos();
            let out = match session.mode {
                SchedMode::Coord => {
                    let mut pred = ChtPredictor::new(session, &m.poses);
                    pred.prime(&infos);
                    run_predicted_schedule(&infos, m.poses.len(), csp_step, &mut pred)
                }
                SchedMode::Naive => run_schedule(&infos, m.poses.len(), Schedule::Naive),
                SchedMode::Csp => {
                    run_schedule(&infos, m.poses.len(), Schedule::Csp { step: csp_step })
                }
            };
            let sm = &session.metrics;
            sm.checks.fetch_add(1, Ordering::Relaxed);
            sm.cdqs_issued
                .fetch_add(out.cdqs_executed as u64, Ordering::Relaxed);
            sm.cdqs_total
                .fetch_add(out.cdqs_total as u64, Ordering::Relaxed);
            sm.collisions
                .fetch_add(u64::from(out.colliding), Ordering::Relaxed);
            CheckResult {
                colliding: out.colliding,
                cdqs_executed: out.cdqs_executed as u64,
                cdqs_total: out.cdqs_total as u64,
                obstacle_tests: out.obstacle_tests as u64,
            }
        })
        .collect()
}

struct RegistryInner {
    sessions: HashMap<u64, Arc<SessionState>>,
    free_slots: Vec<usize>,
    next_id: u64,
}

/// What [`SessionRegistry::open_full`] produced.
#[derive(Debug)]
pub struct OpenOutcome {
    /// The new session.
    pub session: Arc<SessionState>,
    /// Sessions evicted to make room (0 or 1).
    pub evicted: usize,
    /// Populated CHT entries the evicted session was holding — the learned
    /// state that would have been silently discarded before the store
    /// existed (feeds `copred_sessions_evicted_learned_total`).
    pub evicted_occupancy: u64,
    /// Whether the session warm-started from persisted state.
    pub warm: bool,
}

/// The concurrent session table. All methods are safe to call from any
/// connection or worker thread.
pub struct SessionRegistry {
    pool: ShardedCht,
    inner: Mutex<RegistryInner>,
    clock: AtomicU64,
    capacity: usize,
    store: Option<Arc<StoreRegistry>>,
    /// Telemetry rendered as `copred_store_*` even when the store is
    /// disabled (all-zero counters keep the metrics page shape stable).
    fallback_stats: Arc<StoreStats>,
}

impl SessionRegistry {
    /// Builds a registry whose shard pool has `capacity` independent CHTs
    /// of `params` geometry.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero or not a power of two (the
    /// [`ShardedCht`] slot-count invariant).
    pub fn new(params: ChtParams, capacity: usize) -> Self {
        Self::new_with_store(params, capacity, None)
    }

    /// Like [`new`](Self::new) but with an optional persistence backend:
    /// sessions that open with an environment fingerprint warm-start from
    /// it and persist back on close/evict.
    pub fn new_with_store(
        params: ChtParams,
        capacity: usize,
        store: Option<Arc<StoreRegistry>>,
    ) -> Self {
        SessionRegistry {
            pool: ShardedCht::new(params, capacity),
            inner: Mutex::new(RegistryInner {
                sessions: HashMap::new(),
                free_slots: (0..capacity).rev().collect(),
                next_id: 1,
            }),
            clock: AtomicU64::new(0),
            capacity,
            store,
            fallback_stats: Arc::new(StoreStats::new()),
        }
    }

    /// The store's telemetry counters (all-zero fallback when persistence
    /// is disabled, so `/metrics` always renders the full series set).
    pub fn store_stats(&self) -> Arc<StoreStats> {
        match &self.store {
            Some(s) => s.stats(),
            None => Arc::clone(&self.fallback_stats),
        }
    }

    /// Whether a persistence backend is attached.
    pub fn store_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// The attached persistence backend, when there is one — the fleet
    /// replication ops read stored snapshots and merge pushed ones through
    /// this.
    pub fn store(&self) -> Option<&Arc<StoreRegistry>> {
        self.store.as_ref()
    }

    /// Capacity of the shard pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Open sessions right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").sessions.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every open session, sorted by id — the `/metrics`
    /// renderer walks this without holding the registry lock while
    /// formatting. Does not bump LRU stamps.
    pub fn sessions_snapshot(&self) -> Vec<Arc<SessionState>> {
        let inner = self.inner.lock().expect("registry lock");
        let mut v: Vec<Arc<SessionState>> = inner.sessions.values().map(Arc::clone).collect();
        v.sort_by_key(|s| s.id);
        v
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a session, evicting the least-recently-used idle session when
    /// the pool is full. Returns the new session and how many sessions
    /// were evicted to make room (0 or 1). Compatibility wrapper over
    /// [`open_full`](Self::open_full) with no environment fingerprint.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] for an unknown robot,
    /// [`ServiceError::Busy`] when the pool is full of busy sessions.
    pub fn open(
        &self,
        robot_name: &str,
        mode: SchedMode,
        seed: u64,
    ) -> Result<(Arc<SessionState>, usize), ServiceError> {
        self.open_full(robot_name, mode, seed, None)
            .map(|o| (o.session, o.evicted))
    }

    /// Opens a session, optionally keyed by an environment fingerprint.
    /// With a fingerprint and a store attached, the session warm-starts
    /// from any persisted table for that fingerprint (copy-on-lease: the
    /// stored image is *copied* into the private shard) and logs/persists
    /// its learned state back. An evicted victim's table is persisted
    /// through its own store handle before the slot is reused.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] for an unknown robot,
    /// [`ServiceError::Busy`] when the pool is full of busy sessions.
    pub fn open_full(
        &self,
        robot_name: &str,
        mode: SchedMode,
        seed: u64,
        fp: Option<u64>,
    ) -> Result<OpenOutcome, ServiceError> {
        let robot = robot_by_name(robot_name)
            .ok_or_else(|| ServiceError::BadRequest(format!("unknown robot '{robot_name}'")))?;
        let hasher = CoordHash::paper_default(&robot);
        let mut inner = self.inner.lock().expect("registry lock");
        let mut evicted = 0;
        let mut evicted_occupancy = 0u64;
        if inner.free_slots.is_empty() {
            let victim = inner
                .sessions
                .values()
                .filter(|s| s.pending.load(Ordering::Acquire) == 0)
                .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                .map(|s| s.id);
            match victim {
                Some(id) => {
                    let s = inner.sessions.remove(&id).expect("victim present");
                    // Eviction used to discard the victim's learned table
                    // silently; now the cost is measured, and persisted
                    // when the victim has a store handle. The snapshot
                    // write happens under the registry lock — acceptable
                    // because eviction is the slow path by construction.
                    evicted_occupancy = s.shard.occupancy() as u64;
                    s.persist_to_store();
                    inner.free_slots.push(s.shard_slot);
                    evicted = 1;
                }
                None => {
                    return Err(ServiceError::Busy(
                        "session pool full and every session has jobs in flight".into(),
                    ))
                }
            }
        }
        let slot = inner.free_slots.pop().expect("slot after eviction");
        let shard = self.pool.shard(slot);
        // The slot may have a previous tenant's history: a session always
        // starts with the paper's per-query reset.
        shard.reset();
        let id = inner.next_id;
        inner.next_id += 1;
        // The U stream must be a pure function of the *client's* seed —
        // session ids are assigned in racy accept order, so folding them
        // in would break replay determinism. SplitMix64 scrambles weak
        // seeds; xorshift64 must not start at zero, hence the remap.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut u_seed = (z ^ (z >> 31)).max(1);
        // Warm start: copy any persisted table for this fingerprint into
        // the private shard and resume its U-draw stream, so the session
        // continues exactly where the persisted one left off.
        let mut warm = false;
        let store_handle = match (&self.store, fp) {
            (Some(registry), Some(fp)) => match registry.open_session(fp, shard.params()) {
                Ok(opened) => {
                    if let Some(image) = &opened.image {
                        shard.load_cells(&image.cells);
                        if image.u_state != 0 {
                            u_seed = image.u_state;
                        }
                        warm = true;
                    }
                    Some(opened.store)
                }
                // Store I/O failure degrades to a cold, unpersisted
                // session rather than failing the open.
                Err(_) => None,
            },
            _ => None,
        };
        let session = Arc::new(SessionState {
            id,
            mode,
            shard,
            shard_slot: slot,
            hasher,
            metrics: SessionMetrics::default(),
            pending: AtomicUsize::new(0),
            u_state: Mutex::new(u_seed),
            last_used: AtomicU64::new(self.tick()),
            store: store_handle,
        });
        inner.sessions.insert(id, Arc::clone(&session));
        Ok(OpenOutcome {
            session,
            evicted,
            evicted_occupancy,
            warm,
        })
    }

    /// Looks up a session and bumps its LRU stamp.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSession`] for unknown (or evicted) tokens.
    pub fn get(&self, id: u64) -> Result<Arc<SessionState>, ServiceError> {
        let inner = self.inner.lock().expect("registry lock");
        let s = inner.sessions.get(&id).ok_or(ServiceError::NoSession(id))?;
        s.last_used.store(self.tick(), Ordering::Relaxed);
        Ok(Arc::clone(s))
    }

    /// Closes a session and returns its shard slot to the pool, persisting
    /// its learned table first when it has a store handle.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSession`] for unknown tokens.
    pub fn close(&self, id: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().expect("registry lock");
        let s = inner
            .sessions
            .remove(&id)
            .ok_or(ServiceError::NoSession(id))?;
        s.persist_to_store();
        inner.free_slots.push(s.shard_slot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(cap: usize) -> SessionRegistry {
        SessionRegistry::new(ChtParams::paper_2d(), cap)
    }

    #[test]
    fn open_get_close_roundtrip() {
        let reg = registry(4);
        let (s, evicted) = reg.open("planar-2d", SchedMode::Coord, 7).unwrap();
        assert_eq!(evicted, 0);
        assert_eq!(reg.len(), 1);
        let again = reg.get(s.id).unwrap();
        assert_eq!(again.id, s.id);
        reg.close(s.id).unwrap();
        assert!(reg.is_empty());
        assert!(matches!(reg.get(s.id), Err(ServiceError::NoSession(_))));
    }

    #[test]
    fn unknown_robot_is_bad_request() {
        let reg = registry(2);
        assert!(matches!(
            reg.open("hal-9000", SchedMode::Naive, 0),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn lru_eviction_prefers_stalest_idle_session() {
        let reg = registry(2);
        let (a, _) = reg.open("planar-2d", SchedMode::Coord, 1).unwrap();
        let (b, _) = reg.open("planar-2d", SchedMode::Coord, 2).unwrap();
        // Touch `a` so `b` is the LRU victim.
        reg.get(a.id).unwrap();
        let (c, evicted) = reg.open("planar-2d", SchedMode::Coord, 3).unwrap();
        assert_eq!(evicted, 1);
        assert!(reg.get(a.id).is_ok(), "recently used survives");
        assert!(matches!(reg.get(b.id), Err(ServiceError::NoSession(_))));
        assert!(reg.get(c.id).is_ok());
    }

    #[test]
    fn busy_sessions_are_never_evicted() {
        let reg = registry(2);
        let (a, _) = reg.open("planar-2d", SchedMode::Coord, 1).unwrap();
        let (b, _) = reg.open("planar-2d", SchedMode::Coord, 2).unwrap();
        a.pending.store(1, Ordering::Release);
        b.pending.store(3, Ordering::Release);
        assert!(matches!(
            reg.open("planar-2d", SchedMode::Coord, 3),
            Err(ServiceError::Busy(_))
        ));
        b.pending.store(0, Ordering::Release);
        let (_, evicted) = reg.open("planar-2d", SchedMode::Coord, 3).unwrap();
        assert_eq!(evicted, 1);
        assert!(reg.get(a.id).is_ok(), "busy session kept its slot");
    }

    #[test]
    fn sessions_lease_distinct_shards_and_reset_on_reuse() {
        let reg = registry(2);
        let (a, _) = reg.open("planar-2d", SchedMode::Coord, 1).unwrap();
        let (b, _) = reg.open("planar-2d", SchedMode::Coord, 2).unwrap();
        assert!(!Arc::ptr_eq(&a.shard, &b.shard), "distinct shard leases");
        // Pollute a's shard, close it, reopen: the new tenant sees a
        // clean table.
        a.shard.observe(3, true, 0.9);
        assert!(a.shard.occupancy() > 0);
        let slot_shard = Arc::clone(&a.shard);
        reg.close(a.id).unwrap();
        let (c, _) = reg.open("planar-2d", SchedMode::Coord, 3).unwrap();
        assert!(Arc::ptr_eq(&c.shard, &slot_shard), "slot recycled");
        assert_eq!(c.shard.occupancy(), 0, "history cleared on lease");
    }

    fn store_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copred-service-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn registry_with_store(cap: usize, root: &std::path::Path) -> SessionRegistry {
        let store = Arc::new(StoreRegistry::open(root).unwrap());
        SessionRegistry::new_with_store(ChtParams::paper_2d(), cap, Some(store))
    }

    #[test]
    fn warm_start_restores_table_and_resumes_u_stream() {
        let root = store_root("warm");
        let reg = registry_with_store(4, &root);
        let fp = Some(0xFACE);
        let a = reg
            .open_full("planar-2d", SchedMode::Coord, 42, fp)
            .unwrap();
        assert!(!a.warm, "nothing persisted yet");
        a.session.shard.observe(7, true, 0.0);
        a.session.shard.observe(9, true, 0.0);
        let drawn: Vec<f64> = (0..3).map(|_| a.session.next_u_draw()).collect();
        let cells = a.session.shard.export_cells();
        reg.close(a.session.id).unwrap();
        // Warm reopen: table restored bit-exactly, U stream continues from
        // draw 4 — verified against an uninterrupted same-seed session.
        let b = reg
            .open_full("planar-2d", SchedMode::Coord, 42, fp)
            .unwrap();
        assert!(b.warm);
        assert_eq!(b.session.shard.export_cells(), cells);
        let continuous = reg.open("planar-2d", SchedMode::Coord, 42).unwrap().0;
        let skipped: Vec<f64> = (0..3).map(|_| continuous.next_u_draw()).collect();
        assert_eq!(skipped, drawn);
        for _ in 0..4 {
            assert_eq!(b.session.next_u_draw(), continuous.next_u_draw());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_without_fp_is_cold_and_unpersisted() {
        let root = store_root("nofp");
        let reg = registry_with_store(4, &root);
        let a = reg
            .open_full("planar-2d", SchedMode::Coord, 1, None)
            .unwrap();
        assert!(!a.warm);
        a.session.shard.observe(3, true, 0.0);
        assert!(!a.session.persist_to_store(), "no fp means no store handle");
        reg.close(a.session.id).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn eviction_persists_victim_and_reports_occupancy() {
        let root = store_root("evict");
        let reg = registry_with_store(2, &root);
        let fp = Some(0xE11C);
        let a = reg.open_full("planar-2d", SchedMode::Coord, 1, fp).unwrap();
        a.session.shard.observe(5, true, 0.0);
        a.session.shard.observe(11, true, 0.0);
        let _b = reg.open("planar-2d", SchedMode::Coord, 2).unwrap();
        reg.get(_b.0.id).unwrap(); // make `a` the LRU victim
        let c = reg
            .open_full("planar-2d", SchedMode::Coord, 3, None)
            .unwrap();
        assert_eq!(c.evicted, 1);
        assert_eq!(c.evicted_occupancy, 2, "victim's learned entries counted");
        // The victim's table survived eviction: a same-fp open warm-starts.
        let d = reg.open_full("planar-2d", SchedMode::Coord, 4, fp).unwrap();
        assert!(d.warm, "evicted state must be recoverable");
        assert!(d.session.shard.predict(5));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_same_fp_sessions_never_alias() {
        let root = store_root("alias");
        let reg = registry_with_store(4, &root);
        let fp = Some(0xA11A5);
        let a = reg.open_full("planar-2d", SchedMode::Coord, 1, fp).unwrap();
        let b = reg.open_full("planar-2d", SchedMode::Coord, 2, fp).unwrap();
        assert!(!Arc::ptr_eq(&a.session.shard, &b.session.shard));
        a.session.shard.observe(3, true, 0.0);
        assert!(!b.session.shard.predict(3), "copy-on-lease: no aliasing");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn u_draw_stream_is_deterministic_per_seed() {
        let reg = registry(4);
        let (a, _) = reg.open("planar-2d", SchedMode::Coord, 99).unwrap();
        let draws_a: Vec<f64> = (0..5).map(|_| a.next_u_draw()).collect();
        reg.close(a.id).unwrap();
        // Reopening with the same client seed replays the same stream
        // even though the session id differs: determinism must not
        // depend on id-assignment order.
        let (b, _) = reg.open("planar-2d", SchedMode::Coord, 99).unwrap();
        assert_ne!(a.id, b.id);
        let draws_b: Vec<f64> = (0..5).map(|_| b.next_u_draw()).collect();
        assert_eq!(draws_a, draws_b);
        for d in draws_a {
            assert!((0.0..1.0).contains(&d));
        }
    }
}
