//! Prometheus text-exposition rendering of the server's metrics.
//!
//! Metric names are part of the service's conformance contract (see
//! ROADMAP.md): dashboards and the conformance scraper key on them, so the
//! mapping lives in two const tables — [`GLOBAL_COUNTERS`] and
//! [`SESSION_COUNTERS`] — that both the renderer and the exposition tests
//! iterate. Renaming a metric means editing a table entry, which the
//! golden-file test will flag.

use crate::metrics::Metrics;
use crate::session::SessionState;
use copred_store::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every global counter in [`Metrics`], as
/// `(field, prometheus name, help)`. The exposition test asserts each
/// appears exactly once in a scrape.
pub const GLOBAL_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "sessions_opened",
        "copred_sessions_opened_total",
        "Sessions ever opened.",
    ),
    (
        "sessions_closed",
        "copred_sessions_closed_total",
        "Sessions closed by the client.",
    ),
    (
        "sessions_evicted",
        "copred_sessions_evicted_total",
        "Shard leases reclaimed by LRU eviction.",
    ),
    (
        "requests",
        "copred_requests_total",
        "Requests parsed and dispatched.",
    ),
    (
        "bad_requests",
        "copred_bad_requests_total",
        "Requests rejected as malformed.",
    ),
    (
        "rejected",
        "copred_retry_after_total",
        "Requests bounced with retry_after backpressure.",
    ),
    (
        "checks",
        "copred_checks_total",
        "Motion/pose checks completed.",
    ),
    (
        "cdqs_issued",
        "copred_cdqs_issued_total",
        "Collision-detection queries executed.",
    ),
    (
        "cdqs_total",
        "copred_cdqs_declared_total",
        "Collision-detection queries the checked motions declared.",
    ),
    (
        "evicted_learned",
        "copred_sessions_evicted_learned_total",
        "Sum of CHT occupancy across evicted shards (learned state displaced by LRU pressure).",
    ),
];

/// Every tracing / flight-recorder counter, as
/// `(field, prometheus name, help)`. Same contract discipline as
/// [`GLOBAL_COUNTERS`]; `copred_trace_exemplars_total` is derived from the
/// latency histogram's exemplar writes rather than a dedicated atomic.
pub const TRACE_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "traced_requests",
        "copred_trace_requests_total",
        "Check requests that carried a trace token.",
    ),
    (
        "trace_exemplars",
        "copred_trace_exemplars_total",
        "Latency exemplar slots written from traced samples.",
    ),
    (
        "flight_dumps",
        "copred_flight_dumps_total",
        "Flight-recorder dumps served on demand.",
    ),
    (
        "flight_auto_dumps",
        "copred_flight_auto_dumps_total",
        "Flight-recorder dumps fired by the latency threshold.",
    ),
];

/// Every persistence counter in [`copred_store::StoreStats`], as
/// `(field, prometheus name, help)`. The field order mirrors
/// `StoreStats::stat_lines` and is part of the conformance contract even
/// when the store is disabled (the series then read 0).
pub const STORE_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "snapshots_written",
        "copred_store_snapshots_written_total",
        "CHT snapshots persisted (close, eviction, or WAL compaction).",
    ),
    (
        "snapshots_loaded",
        "copred_store_snapshots_loaded_total",
        "CHT snapshots loaded for a warm start.",
    ),
    (
        "wal_bytes",
        "copred_store_wal_bytes_total",
        "Bytes appended to write-ahead-log segments.",
    ),
    (
        "warm_hits",
        "copred_store_warm_hits_total",
        "Session opens that found persisted state for their fingerprint.",
    ),
    (
        "warm_misses",
        "copred_store_warm_misses_total",
        "Fingerprinted session opens that started cold.",
    ),
    (
        "recovery_replays",
        "copred_store_recovery_replays_total",
        "Warm loads that replayed a non-empty WAL suffix (crash recovery).",
    ),
];

/// Process-global counters for the replay subsystem (`copred-replay`
/// drives these through [`replay_stats`]; they read 0 in a process that
/// never replays). They live here rather than in the replay crate so the
/// one `/metrics` renderer — and its golden-file contract — covers them.
#[derive(Debug, Default)]
pub struct ReplayStats {
    /// Op-log records decoded by the replay reader.
    pub records_read: AtomicU64,
    /// Replay passes completed (one per log × backend run).
    pub replays_run: AtomicU64,
    /// Backend errors observed while replaying.
    pub backend_errors: AtomicU64,
    /// Cumulative nanoseconds the replay fell behind the recorded
    /// schedule in timing mode.
    pub timing_lag_ns: AtomicU64,
}

static REPLAY_STATS: ReplayStats = ReplayStats {
    records_read: AtomicU64::new(0),
    replays_run: AtomicU64::new(0),
    backend_errors: AtomicU64::new(0),
    timing_lag_ns: AtomicU64::new(0),
};

/// The process-wide [`ReplayStats`] instance rendered on `/metrics`.
pub fn replay_stats() -> &'static ReplayStats {
    &REPLAY_STATS
}

/// Every replay counter in [`ReplayStats`], as
/// `(field, prometheus name, help)`. Same contract discipline as
/// [`GLOBAL_COUNTERS`]: the exposition test asserts each appears exactly
/// once in a scrape.
pub const REPLAY_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "records_read",
        "copred_replay_records_read_total",
        "Op-log records decoded by the replay reader.",
    ),
    (
        "replays_run",
        "copred_replay_replays_run_total",
        "Replay passes completed.",
    ),
    (
        "backend_errors",
        "copred_replay_backend_errors_total",
        "Backend errors observed while replaying.",
    ),
    (
        "timing_lag_ns",
        "copred_replay_timing_lag_ns_total",
        "Cumulative lag behind the recorded schedule in timing mode.",
    ),
];

/// Process-global counters for the fleet subsystem (`copred-fleet`'s
/// router and the server's snapshot-replication receiver drive these
/// through [`fleet_stats`]; they read 0 in a process that never joins a
/// fleet). They live here, like [`ReplayStats`], so the one `/metrics`
/// renderer — and its golden-file contract — covers them.
#[derive(Debug, Default)]
pub struct FleetStats {
    /// Sessions routed to a backend by fingerprint hashing.
    pub sessions_routed: AtomicU64,
    /// Snapshots shipped to peers (gossip pushes + failover replicas).
    pub snapshots_shipped: AtomicU64,
    /// Pushed snapshots accepted and merged into the local store.
    pub snapshots_received: AtomicU64,
    /// Pushed snapshots rejected (transfer CRC, version skew, corrupt or
    /// mismatched image, leased fingerprint, store disabled).
    pub snapshots_rejected: AtomicU64,
    /// Sessions re-opened on a surviving backend after their owner died.
    pub failovers: AtomicU64,
    /// Backend I/O or protocol errors observed by the router.
    pub backend_errors: AtomicU64,
}

static FLEET_STATS: FleetStats = FleetStats {
    sessions_routed: AtomicU64::new(0),
    snapshots_shipped: AtomicU64::new(0),
    snapshots_received: AtomicU64::new(0),
    snapshots_rejected: AtomicU64::new(0),
    failovers: AtomicU64::new(0),
    backend_errors: AtomicU64::new(0),
};

/// The process-wide [`FleetStats`] instance rendered on `/metrics`.
pub fn fleet_stats() -> &'static FleetStats {
    &FLEET_STATS
}

/// Every fleet counter in [`FleetStats`], as
/// `(field, prometheus name, help)`. Same contract discipline as
/// [`GLOBAL_COUNTERS`]: the exposition test asserts each appears exactly
/// once in a scrape.
pub const FLEET_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "sessions_routed",
        "copred_fleet_sessions_routed_total",
        "Sessions routed to a backend by fingerprint hashing.",
    ),
    (
        "snapshots_shipped",
        "copred_fleet_snapshots_shipped_total",
        "Snapshots shipped to peers (gossip pushes and failover replicas).",
    ),
    (
        "snapshots_received",
        "copred_fleet_snapshots_received_total",
        "Pushed snapshots accepted and merged into the local store.",
    ),
    (
        "snapshots_rejected",
        "copred_fleet_snapshots_rejected_total",
        "Pushed snapshots rejected (CRC, version skew, corruption, lease, or no store).",
    ),
    (
        "failovers",
        "copred_fleet_failovers_total",
        "Sessions re-opened on a surviving backend after their owner died.",
    ),
    (
        "backend_errors",
        "copred_fleet_backend_errors_total",
        "Backend I/O or protocol errors observed by the router.",
    ),
];

/// Every per-session counter in [`crate::metrics::SessionMetrics`], as
/// `(field, prometheus name, help)`. Samples carry `session` and `mode`
/// labels.
pub const SESSION_COUNTERS: &[(&str, &str, &str)] = &[
    (
        "checks",
        "copred_session_checks_total",
        "Motion/pose checks completed in the session.",
    ),
    (
        "cdqs_issued",
        "copred_session_cdqs_issued_total",
        "CDQs executed in the session.",
    ),
    (
        "cdqs_total",
        "copred_session_cdqs_declared_total",
        "CDQs the session's checked motions declared.",
    ),
    (
        "collisions",
        "copred_session_collisions_total",
        "Checks that found a collision.",
    ),
    (
        "true_pos",
        "copred_session_true_pos_total",
        "Executed CDQs predicted colliding that collided.",
    ),
    (
        "false_pos",
        "copred_session_false_pos_total",
        "Executed CDQs predicted colliding that were free.",
    ),
    (
        "true_neg",
        "copred_session_true_neg_total",
        "Executed CDQs predicted free that were free.",
    ),
    (
        "false_neg",
        "copred_session_false_neg_total",
        "Executed CDQs predicted free that collided.",
    ),
];

fn global_counter<'a>(m: &'a Metrics, field: &str) -> &'a AtomicU64 {
    match field {
        "sessions_opened" => &m.sessions_opened,
        "sessions_closed" => &m.sessions_closed,
        "sessions_evicted" => &m.sessions_evicted,
        "requests" => &m.requests,
        "bad_requests" => &m.bad_requests,
        "rejected" => &m.rejected,
        "checks" => &m.checks,
        "cdqs_issued" => &m.cdqs_issued,
        "cdqs_total" => &m.cdqs_total,
        "evicted_learned" => &m.evicted_learned,
        other => unreachable!("unmapped global counter {other}"),
    }
}

fn trace_counter(m: &Metrics, field: &str) -> u64 {
    match field {
        "traced_requests" => m.traced_requests.load(Ordering::Relaxed),
        "trace_exemplars" => m.check_latency.exemplar_count(),
        "flight_dumps" => m.flight_dumps.load(Ordering::Relaxed),
        "flight_auto_dumps" => m.flight_auto_dumps.load(Ordering::Relaxed),
        other => unreachable!("unmapped trace counter {other}"),
    }
}

fn store_counter<'a>(s: &'a StoreStats, field: &str) -> &'a AtomicU64 {
    match field {
        "snapshots_written" => &s.snapshots_written,
        "snapshots_loaded" => &s.snapshots_loaded,
        "wal_bytes" => &s.wal_bytes,
        "warm_hits" => &s.warm_hits,
        "warm_misses" => &s.warm_misses,
        "recovery_replays" => &s.recovery_replays,
        other => unreachable!("unmapped store counter {other}"),
    }
}

fn replay_counter<'a>(s: &'a ReplayStats, field: &str) -> &'a AtomicU64 {
    match field {
        "records_read" => &s.records_read,
        "replays_run" => &s.replays_run,
        "backend_errors" => &s.backend_errors,
        "timing_lag_ns" => &s.timing_lag_ns,
        other => unreachable!("unmapped replay counter {other}"),
    }
}

fn fleet_counter<'a>(s: &'a FleetStats, field: &str) -> &'a AtomicU64 {
    match field {
        "sessions_routed" => &s.sessions_routed,
        "snapshots_shipped" => &s.snapshots_shipped,
        "snapshots_received" => &s.snapshots_received,
        "snapshots_rejected" => &s.snapshots_rejected,
        "failovers" => &s.failovers,
        "backend_errors" => &s.backend_errors,
        other => unreachable!("unmapped fleet counter {other}"),
    }
}

fn session_counter<'a>(s: &'a SessionState, field: &str) -> &'a AtomicU64 {
    let m = &s.metrics;
    match field {
        "checks" => &m.checks,
        "cdqs_issued" => &m.cdqs_issued,
        "cdqs_total" => &m.cdqs_total,
        "collisions" => &m.collisions,
        "true_pos" => &m.true_pos,
        "false_pos" => &m.false_pos,
        "true_neg" => &m.true_neg,
        "false_neg" => &m.false_neg,
        other => unreachable!("unmapped session counter {other}"),
    }
}

/// Renders the `copred_profile_*` section from a profiler snapshot. The
/// shape is load-independent: every stage label in [`copred_obs::Stage::ALL`]
/// order appears even when the sampler has no data (all zeros), which is
/// what lets the golden-file test pin the series. Names and label values
/// are a stability contract (ROADMAP.md).
fn render_profile(b: &mut copred_obs::PromBuf, p: &copred_obs::ProfileSnapshot) {
    b.family(
        "copred_profile_samples_total",
        "counter",
        "Stage-stack samples accumulated by the continuous profiler (idle included).",
    );
    b.sample("copred_profile_samples_total", p.samples as f64);
    b.family(
        "copred_profile_drops_total",
        "counter",
        "Sampler reads abandoned as torn (seqlock retries exhausted).",
    );
    b.sample("copred_profile_drops_total", p.drops as f64);
    b.family(
        "copred_profile_skews_total",
        "counter",
        "Sampler ticks delivered at least a full interval late.",
    );
    b.sample("copred_profile_skews_total", p.skews as f64);
    b.family(
        "copred_profile_threads",
        "gauge",
        "Threads that contributed at least one profile sample.",
    );
    b.sample("copred_profile_threads", p.threads as f64);
    b.family(
        "copred_profile_stage_fraction",
        "gauge",
        "Fraction of sampled time whose innermost frame is each stage (busy fraction).",
    );
    for &(stage, frac) in &p.stage_fractions {
        b.sample_labeled("copred_profile_stage_fraction", &[("stage", stage)], frac);
    }
    b.family(
        "copred_profile_queue_wait_fraction",
        "gauge",
        "Fraction of sampled time spent blocked waiting on queues.",
    );
    b.sample("copred_profile_queue_wait_fraction", p.queue_wait_fraction);
}

/// Renders the full `/metrics` page: global counters, the check-latency
/// summary, queue/session gauges, continuous-profiling series, and
/// per-session prediction-quality and CHT-health series.
pub fn render_prometheus(
    metrics: &Metrics,
    sessions: &[Arc<SessionState>],
    queue_depth: usize,
    store: &StoreStats,
    profile: &copred_obs::ProfileSnapshot,
) -> String {
    let mut b = copred_obs::PromBuf::new();
    for &(field, name, help) in GLOBAL_COUNTERS {
        b.family(name, "counter", help);
        b.sample(
            name,
            global_counter(metrics, field).load(Ordering::Relaxed) as f64,
        );
    }
    for &(field, name, help) in TRACE_COUNTERS {
        b.family(name, "counter", help);
        b.sample(name, trace_counter(metrics, field) as f64);
    }
    for &(field, name, help) in STORE_COUNTERS {
        b.family(name, "counter", help);
        b.sample(
            name,
            store_counter(store, field).load(Ordering::Relaxed) as f64,
        );
    }
    let replay = replay_stats();
    for &(field, name, help) in REPLAY_COUNTERS {
        b.family(name, "counter", help);
        b.sample(
            name,
            replay_counter(replay, field).load(Ordering::Relaxed) as f64,
        );
    }
    let fleet = fleet_stats();
    for &(field, name, help) in FLEET_COUNTERS {
        b.family(name, "counter", help);
        b.sample(
            name,
            fleet_counter(fleet, field).load(Ordering::Relaxed) as f64,
        );
    }

    b.family(
        "copred_sessions_open",
        "gauge",
        "Sessions currently holding a shard lease.",
    );
    b.sample("copred_sessions_open", sessions.len() as f64);
    b.family(
        "copred_worker_queue_depth",
        "gauge",
        "Check batches waiting in the worker queue.",
    );
    b.sample("copred_worker_queue_depth", queue_depth as f64);
    b.family(
        "copred_obs_dropped_events_total",
        "counter",
        "Trace events discarded because a recorder ring was full.",
    );
    b.sample(
        "copred_obs_dropped_events_total",
        copred_obs::dropped_events() as f64,
    );
    render_profile(&mut b, profile);

    let h = &metrics.check_latency;
    b.family(
        "copred_check_latency_ns",
        "summary",
        "End-to-end check-batch latency (enqueue to reply built).",
    );
    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        let v = h.quantile(q).map_or(f64::NAN, |n| n as f64);
        // OpenMetrics exemplar: the worst recent traced sample in the
        // quantile's bucket, keyed by its trace id.
        match h.quantile_exemplar(q) {
            Some((ns, trace)) => {
                let hex = format!("{trace:032x}");
                b.sample_labeled_exemplar(
                    "copred_check_latency_ns",
                    &[("quantile", label)],
                    v,
                    &[("trace_id", hex.as_str())],
                    ns as f64,
                );
            }
            None => b.sample_labeled("copred_check_latency_ns", &[("quantile", label)], v),
        }
    }
    b.sample("copred_check_latency_ns_sum", h.sum_ns() as f64);
    b.sample("copred_check_latency_ns_count", h.count() as f64);

    for &(field, name, help) in SESSION_COUNTERS {
        b.family(name, "counter", help);
        for s in sessions {
            let id = s.id.to_string();
            b.sample_labeled(
                name,
                &[("session", id.as_str()), ("mode", s.mode.label())],
                session_counter(s, field).load(Ordering::Relaxed) as f64,
            );
        }
    }
    type SessionGauge = (&'static str, &'static str, fn(&SessionState) -> f64);
    let session_gauges: &[SessionGauge] = &[
        (
            "copred_session_precision",
            "Fraction of collision predictions that were right (NaN before the predictor fires).",
            |s| s.metrics.precision().unwrap_or(f64::NAN),
        ),
        (
            "copred_session_recall",
            "Fraction of colliding CDQs the predictor flagged (NaN before any executed CDQ collides).",
            |s| s.metrics.recall().unwrap_or(f64::NAN),
        ),
        (
            "copred_session_cht_occupancy",
            "Shard entries with nonzero counters.",
            |s| s.shard.occupancy() as f64,
        ),
        (
            "copred_session_cht_saturation",
            "Fraction of shard entries with a saturated counter.",
            |s| s.shard.saturation_fraction(),
        ),
        (
            "copred_session_cht_aliasing",
            "Estimated fraction of shard writes that aliased with a different code.",
            |s| s.shard.aliasing_estimate(),
        ),
    ];
    for &(name, help, value) in session_gauges {
        b.family(name, "gauge", help);
        for s in sessions {
            let id = s.id.to_string();
            b.sample_labeled(
                name,
                &[("session", id.as_str()), ("mode", s.mode.label())],
                value(s),
            );
        }
    }
    b.finish()
}
