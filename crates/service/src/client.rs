//! A small blocking client for the copred service, used by the load
//! generator, the integration tests, and the `copred_loadgen` binary.

use crate::protocol::{CheckResult, Request, Response, SchedMode};
use copred_obs::TraceId;
use copred_trace::frame::{read_text_frame, write_text_frame};
use copred_trace::MotionTrace;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// One connection to a copred server. Strictly request/response: every
/// call writes a frame and blocks for the reply frame.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ServiceClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads the reply.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::InvalidData`] when the reply is
    /// unparseable or the stream closes mid-exchange.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_text_frame(&mut self.writer, &req.to_text())?;
        let payload = read_text_frame(&mut self.reader)?
            .ok_or_else(|| proto_err("server closed the connection"))?;
        Response::from_text(&payload).map_err(proto_err)
    }

    /// Opens a session and returns its token.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::Other`] carrying the server's
    /// error text.
    pub fn open(
        &mut self,
        robot: &str,
        link_count: u32,
        mode: SchedMode,
        seed: u64,
    ) -> io::Result<u64> {
        self.open_with_fp(robot, link_count, mode, seed, None)
            .map(|(id, _warm)| id)
    }

    /// Opens a session carrying an optional environment fingerprint and
    /// returns its token plus whether the server warm-started it from
    /// persisted state.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::Other`] carrying the server's
    /// error text.
    pub fn open_with_fp(
        &mut self,
        robot: &str,
        link_count: u32,
        mode: SchedMode,
        seed: u64,
        fp: Option<u64>,
    ) -> io::Result<(u64, bool)> {
        let req = Request::Open {
            robot: robot.to_string(),
            link_count,
            mode,
            seed,
            fp,
        };
        match self.call(&req)? {
            Response::Session { id, warm } => Ok((id, warm)),
            Response::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(proto_err(format!("unexpected reply to open: {other:?}"))),
        }
    }

    /// Sends a check batch once, returning the raw response so callers can
    /// see backpressure.
    ///
    /// # Errors
    ///
    /// Same as [`Self::call`].
    pub fn check_motions_once(
        &mut self,
        session: u64,
        motions: Vec<MotionTrace>,
    ) -> io::Result<Response> {
        self.check_motions_once_traced(session, motions, None)
    }

    /// Sends a check batch once with an optional causal trace id attached,
    /// returning the raw response so callers can see backpressure (and the
    /// trace echo).
    ///
    /// # Errors
    ///
    /// Same as [`Self::call`].
    pub fn check_motions_once_traced(
        &mut self,
        session: u64,
        motions: Vec<MotionTrace>,
        trace: Option<TraceId>,
    ) -> io::Result<Response> {
        self.call(&Request::CheckMotion {
            session,
            motions,
            trace,
        })
    }

    /// Sends a check batch, sleeping and retrying on `retry_after` up to
    /// `max_retries` times. Returns the results and how many retries were
    /// needed.
    ///
    /// # Errors
    ///
    /// I/O failures, server errors, or retry exhaustion (as
    /// [`io::ErrorKind::TimedOut`]).
    pub fn check_motions(
        &mut self,
        session: u64,
        motions: &[MotionTrace],
        max_retries: usize,
    ) -> io::Result<(Vec<CheckResult>, usize)> {
        self.check_motions_traced(session, motions, max_retries, None)
    }

    /// [`Self::check_motions`] with an optional causal trace id. The
    /// server must echo the exact token (absent stays absent); a mismatch
    /// is reported as [`io::ErrorKind::InvalidData`].
    ///
    /// # Errors
    ///
    /// I/O failures, server errors, retry exhaustion, or a bad trace echo.
    pub fn check_motions_traced(
        &mut self,
        session: u64,
        motions: &[MotionTrace],
        max_retries: usize,
        trace: Option<TraceId>,
    ) -> io::Result<(Vec<CheckResult>, usize)> {
        let mut retries = 0;
        loop {
            match self.check_motions_once_traced(session, motions.to_vec(), trace)? {
                Response::Results {
                    results: rs,
                    trace: echo,
                } => {
                    if echo != trace {
                        return Err(proto_err(format!(
                            "trace echo mismatch: sent {trace:?}, got {echo:?}"
                        )));
                    }
                    return Ok((rs, retries));
                }
                Response::Error(crate::protocol::ServiceError::RetryAfter { ms, .. }) => {
                    if retries >= max_retries {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("backpressured {retries} times, giving up"),
                        ));
                    }
                    retries += 1;
                    thread::sleep(Duration::from_millis(ms.max(1)));
                }
                Response::Error(e) => return Err(io::Error::other(e.to_string())),
                other => return Err(proto_err(format!("unexpected reply to check: {other:?}"))),
            }
        }
    }

    /// Clears the session's CHT.
    ///
    /// # Errors
    ///
    /// I/O failures or server errors.
    pub fn reset(&mut self, session: u64) -> io::Result<()> {
        match self.call(&Request::ResetCht { session })? {
            Response::ResetDone => Ok(()),
            Response::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(proto_err(format!("unexpected reply to reset: {other:?}"))),
        }
    }

    /// Fetches server-wide (`None`) or per-session stats.
    ///
    /// # Errors
    ///
    /// I/O failures or server errors.
    pub fn stats(&mut self, session: Option<u64>) -> io::Result<Vec<(String, String)>> {
        match self.call(&Request::Stats { session })? {
            Response::Stats(kv) => Ok(kv),
            Response::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(proto_err(format!("unexpected reply to stats: {other:?}"))),
        }
    }

    /// Dumps the server's flight recorder (admin verb) and returns the
    /// number of entries captured.
    ///
    /// # Errors
    ///
    /// I/O failures or server errors.
    pub fn dump_flight(&mut self) -> io::Result<u64> {
        match self.call(&Request::Dump)? {
            Response::DumpDone { entries } => Ok(entries),
            Response::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(proto_err(format!("unexpected reply to dump: {other:?}"))),
        }
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// I/O failures or server errors.
    pub fn close(&mut self, session: u64) -> io::Result<()> {
        match self.call(&Request::Close { session })? {
            Response::Closed => Ok(()),
            Response::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(proto_err(format!("unexpected reply to close: {other:?}"))),
        }
    }
}

/// Reads one named value out of a stats reply.
pub fn stat_u64(kv: &[(String, String)], key: &str) -> Option<u64> {
    kv.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
}
