//! End-to-end loopback tests on synthetic workloads: full verb coverage,
//! run-to-run determinism, and the paper's headline effect — the
//! predictor-ordered scheduler issues fewer CDQs than the naive order on
//! the same workload.

use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_service::client::stat_u64;
use copred_service::protocol::SchedMode;
use copred_service::{
    parse_oplog, run_loadgen, write_oplog, LoadgenConfig, Pacing, Server, ServerConfig,
    ServiceClient,
};
use copred_trace::{MotionTrace, QueryTrace, Stage, TraceCdq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic planar workload: motions are straight-line sweeps through
/// [-1, 1]², a disc obstacle of radius 0.35 sits at the origin, and the
/// CDQ centers equal the poses — so collision history is spatially
/// coherent and a COORD predictor can learn it.
fn synthetic_traces(n_traces: usize, motions_per_trace: usize, seed: u64) -> Vec<QueryTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_traces)
        .map(|_| {
            let motions = (0..motions_per_trace)
                .map(|_| {
                    let (ax, ay) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    let (bx, by) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    let n_poses = 8;
                    let poses: Vec<Config> = (0..n_poses)
                        .map(|i| {
                            let t = i as f64 / (n_poses - 1) as f64;
                            Config::new(vec![ax + t * (bx - ax), ay + t * (by - ay)])
                        })
                        .collect();
                    let cdqs = poses
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let c = Vec3::new(q[0], q[1], 0.0);
                            TraceCdq {
                                pose_idx: i as u32,
                                link_idx: 0,
                                center: c,
                                colliding: (c.x * c.x + c.y * c.y).sqrt() < 0.35,
                                obstacle_tests: 1,
                            }
                        })
                        .collect();
                    MotionTrace {
                        stage: Stage::Explore,
                        poses,
                        cdqs,
                    }
                })
                .collect();
            QueryTrace {
                robot_name: "planar-2d".to_string(),
                link_count: 1,
                motions,
            }
        })
        .collect()
}

fn loadgen_config(addr: std::net::SocketAddr, mode: SchedMode) -> LoadgenConfig {
    LoadgenConfig {
        addr: addr.to_string(),
        connections: 4,
        mode,
        seed: 11,
        pacing: Pacing::Closed,
        batch: 4,
        max_retries: 256,
        metrics_interval: None,
        fingerprints: None,
        trace_ids: true,
        stats_tsv: None,
    }
}

fn run_once(traces: &[QueryTrace], mode: SchedMode) -> copred_service::LoadgenReport {
    let server = Server::start(ServerConfig::default()).expect("start server");
    run_loadgen(&loadgen_config(server.local_addr(), mode), traces).expect("loadgen run")
}

#[test]
fn verbs_roundtrip_over_loopback() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    let mut c = ServiceClient::connect(server.local_addr()).expect("connect");
    let traces = synthetic_traces(1, 3, 5);
    let motions = &traces[0].motions;

    let session = c.open("planar-2d", 1, SchedMode::Coord, 3).expect("open");
    let (results, _) = c.check_motions(session, motions, 8).expect("check batch");
    assert_eq!(results.len(), motions.len());
    for (r, m) in results.iter().zip(motions) {
        assert_eq!(r.colliding, m.cdqs.iter().any(|q| q.colliding));
        assert_eq!(r.cdqs_total as usize, m.cdqs.len());
        assert!(r.cdqs_executed <= r.cdqs_total);
    }

    let kv = c.stats(Some(session)).expect("session stats");
    assert_eq!(stat_u64(&kv, "checks"), Some(motions.len() as u64));
    assert!(kv.iter().any(|(k, v)| k == "mode" && v == "coord"));

    c.reset(session).expect("reset");
    let kv = c.stats(Some(session)).expect("stats after reset");
    assert_eq!(
        stat_u64(&kv, "cht_occupancy"),
        Some(0),
        "reset clears the table"
    );

    c.close(session).expect("close");
    assert!(c.stats(Some(session)).is_err(), "closed session is gone");

    let kv = c.stats(None).expect("global stats");
    assert_eq!(stat_u64(&kv, "sessions_open"), Some(0));
    assert_eq!(stat_u64(&kv, "sessions_closed"), Some(1));
}

#[test]
fn coord_issues_fewer_cdqs_than_naive_and_runs_are_deterministic() {
    let traces = synthetic_traces(8, 24, 42);

    let coord_a = run_once(&traces, SchedMode::Coord);
    let coord_b = run_once(&traces, SchedMode::Coord);
    let naive = run_once(&traces, SchedMode::Naive);

    // Determinism: per-session work is single-in-flight and every session
    // seed derives from the trace index, so two runs agree exactly.
    assert_eq!(
        coord_a.cdqs_issued, coord_b.cdqs_issued,
        "coord runs must replay identically"
    );
    assert_eq!(coord_a.checks, coord_b.checks);
    assert_eq!(coord_a.collisions, coord_b.collisions);

    // Same workload, same totals — only the issue order differs.
    assert_eq!(coord_a.cdqs_total, naive.cdqs_total);
    assert_eq!(
        coord_a.collisions, naive.collisions,
        "schedules never change outcomes"
    );

    // The headline: prediction saves CDQs versus the naive order.
    assert!(
        coord_a.cdqs_issued < naive.cdqs_issued,
        "coord ({}) must issue fewer CDQs than naive ({})",
        coord_a.cdqs_issued,
        naive.cdqs_issued
    );
}

#[test]
fn server_stats_match_client_side_sums_and_oplog_roundtrips() {
    let traces = synthetic_traces(4, 10, 9);
    let server = Server::start(ServerConfig::default()).expect("start server");
    let addr = server.local_addr();
    let report = run_loadgen(&loadgen_config(addr, SchedMode::Coord), &traces).expect("loadgen");

    let mut c = ServiceClient::connect(addr).expect("connect");
    let kv = c.stats(None).expect("global stats");
    assert_eq!(stat_u64(&kv, "cdqs_issued"), Some(report.cdqs_issued));
    assert_eq!(stat_u64(&kv, "cdqs_total"), Some(report.cdqs_total));
    assert_eq!(stat_u64(&kv, "checks"), Some(report.checks));
    assert!(stat_u64(&kv, "latency_p50_ns").unwrap() > 0);

    // The op-log covers every wire operation and roundtrips through TSV.
    let n_batches: usize = traces.iter().map(|t| t.motions.len().div_ceil(4)).sum();
    assert_eq!(
        report.ops.len(),
        traces.len() * 2 + n_batches,
        "open+close+batches"
    );
    let meta = copred_service::OplogMeta {
        seed: 1,
        workload: "synthetic".to_string(),
        scale: "traces=4".to_string(),
    };
    let text = write_oplog(&meta, &report.ops);
    let (back_meta, back) = parse_oplog(&text).expect("parse op-log");
    assert_eq!(back_meta, meta);
    assert_eq!(back, report.ops);
    assert!(
        back.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "sorted by start"
    );
    assert!(back.iter().all(|op| op.bytes > 0));
    assert!(
        back.iter()
            .all(|op| !op.tag.is_empty() && !op.request.is_empty() && !op.response.is_empty()),
        "every record carries replayable payloads"
    );
}
