//! The PR-8 acceptance workflow, end to end: a seeded traced loadgen run
//! must surface at least one exemplar on `/metrics`, and that exemplar's
//! trace id must resolve — through the `dump` op's trace-dump artifacts
//! and the `/debug/flight` endpoint — to a Chrome trace carrying the full
//! decode→predict→schedule→execute→encode span chain.

use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_obs::{http_get, parse_prometheus};
use copred_service::protocol::SchedMode;
use copred_service::{run_loadgen, LoadgenConfig, Pacing, Server, ServerConfig, ServiceClient};
use copred_trace::{MotionTrace, QueryTrace, Stage, TraceCdq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;

/// Planar synthetic workload (same shape as the loopback tests): sweeps
/// through [-1, 1]² against a disc obstacle, CDQ centers on the poses.
fn synthetic_traces(n_traces: usize, motions_per_trace: usize, seed: u64) -> Vec<QueryTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_traces)
        .map(|_| {
            let motions = (0..motions_per_trace)
                .map(|_| {
                    let (ax, ay) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    let (bx, by) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    let n_poses = 8;
                    let poses: Vec<Config> = (0..n_poses)
                        .map(|i| {
                            let t = i as f64 / (n_poses - 1) as f64;
                            Config::new(vec![ax + t * (bx - ax), ay + t * (by - ay)])
                        })
                        .collect();
                    let cdqs = poses
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let c = Vec3::new(q[0], q[1], 0.0);
                            TraceCdq {
                                pose_idx: i as u32,
                                link_idx: 0,
                                center: c,
                                colliding: (c.x * c.x + c.y * c.y).sqrt() < 0.35,
                                obstacle_tests: 1,
                            }
                        })
                        .collect();
                    MotionTrace {
                        stage: Stage::Explore,
                        poses,
                        cdqs,
                    }
                })
                .collect();
            QueryTrace {
                robot_name: "planar-2d".to_string(),
                link_count: 1,
                motions,
            }
        })
        .collect()
}

fn loadgen_config(addr: std::net::SocketAddr) -> LoadgenConfig {
    LoadgenConfig {
        addr: addr.to_string(),
        connections: 1,
        mode: SchedMode::Coord,
        seed: 11,
        pacing: Pacing::Closed,
        batch: 4,
        max_retries: 256,
        metrics_interval: None,
        fingerprints: None,
        trace_ids: true,
        stats_tsv: None,
    }
}

/// Event objects of a JSON array/trace body, split crudely on object
/// boundaries — enough to check name/trace co-occurrence without a full
/// JSON parser.
fn event_chunks(body: &str) -> Vec<&str> {
    body.split("},{").collect()
}

#[test]
fn exemplar_trace_id_resolves_to_full_span_chain() {
    let dir = std::env::temp_dir().join(format!("copred-trace-workflow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        trace_dump: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let metrics_addr = server.metrics_addr().expect("metrics endpoint");

    let traces = synthetic_traces(4, 12, 7);
    run_loadgen(&loadgen_config(server.local_addr()), &traces).expect("traced loadgen run");

    // --- /metrics: the latency summary must carry >= 1 exemplar whose
    // trace id came from this run.
    let page = http_get(metrics_addr, "/metrics").expect("scrape /metrics");
    let samples = parse_prometheus(&page).expect("scrape parses");
    let exemplars: Vec<(Vec<(String, String)>, f64)> = samples
        .iter()
        .filter(|s| s.name == "copred_check_latency_ns")
        .filter_map(|s| s.exemplar.clone())
        .collect();
    assert!(
        !exemplars.is_empty(),
        "no exemplar on the latency summary:\n{page}"
    );
    let hex = exemplars[0]
        .0
        .iter()
        .find(|(k, _)| k == "trace_id")
        .map(|(_, v)| v.clone())
        .expect("exemplar carries trace_id");
    assert_eq!(hex.len(), 32, "trace id is hex128: {hex}");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "copred_trace_requests_total" && s.value > 0.0),
        "traced_requests counter must move"
    );

    // --- dump op: exports flight + Chrome trace under trace_dump.
    let mut c = ServiceClient::connect(server.local_addr()).expect("connect");
    let entries = c.dump_flight().expect("dump op");
    assert!(entries > 0, "flight recorder must hold op summaries");

    let trace_json = std::fs::read_to_string(dir.join("trace-0.json")).expect("trace dump written");
    assert!(
        trace_json.contains(&hex),
        "exemplar trace id {hex} absent from the Chrome trace dump"
    );
    // The exemplar's request resolves to the full causal chain: every
    // pipeline stage has a span stamped with that exact trace id.
    let chunks = event_chunks(&trace_json);
    for stage in ["decode", "predict", "schedule", "execute", "encode"] {
        let needle = format!("\"name\":\"{stage}\"");
        assert!(
            chunks
                .iter()
                .any(|c| c.contains(&needle) && c.contains(&hex)),
            "no {stage} span carries trace {hex}"
        );
    }

    // --- flight artifacts: the dump file and the live /debug/flight
    // endpoint both resolve the trace id to recorded check ops.
    let flight_json =
        std::fs::read_to_string(dir.join("flight-0.json")).expect("flight dump written");
    assert!(
        flight_json.contains(&hex),
        "exemplar trace id absent from the flight dump"
    );
    let live = http_get(metrics_addr, "/debug/flight").expect("GET /debug/flight");
    assert!(
        live.contains("\"kind\":\"op\"") && live.contains("\"name\":\"check\""),
        "flight endpoint must list check ops: {live}"
    );
    assert_eq!(
        server.metrics().flight_dumps.load(Ordering::Relaxed),
        2,
        "dump op + /debug/flight each count one on-demand dump"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn latency_threshold_fires_auto_dump() {
    let dir = std::env::temp_dir().join(format!("copred-auto-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        trace_dump: Some(dir.to_string_lossy().into_owned()),
        // Every batch waits 5ms in the worker, so a 1ms threshold trips
        // on the first check; the 1/s rate limit keeps it to one dump.
        flight_threshold_ms: 1,
        worker_delay_ms: 5,
        ..ServerConfig::default()
    })
    .expect("start server");

    let traces = synthetic_traces(1, 4, 9);
    run_loadgen(&loadgen_config(server.local_addr()), &traces).expect("loadgen run");

    let auto = server.metrics().flight_auto_dumps.load(Ordering::Relaxed);
    assert!(auto >= 1, "threshold must fire at least one auto dump");
    assert!(
        dir.join("flight-0.json").exists(),
        "auto dump must land on disk"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
