//! Prometheus exposition coverage: a golden-file pin of the rendered
//! page (metric names are a conformance contract — see ROADMAP.md), an
//! exactly-once round-trip over every global counter, and a scrape of the
//! live `/metrics` endpoint.

use copred_core::ChtParams;
use copred_obs::{http_get, parse_prometheus, PromSample};
use copred_service::protocol::SchedMode;
use copred_service::{
    fleet_stats, render_prometheus, replay_stats, Metrics, Server, ServerConfig, SessionRegistry,
    FLEET_COUNTERS, GLOBAL_COUNTERS, REPLAY_COUNTERS, SESSION_COUNTERS, STORE_COUNTERS,
    TRACE_COUNTERS,
};
use copred_store::StoreStats;
use std::sync::atomic::Ordering;

/// Builds a deterministic metrics + registry state for rendering: every
/// global counter gets a distinct value (so a swapped mapping cannot go
/// unnoticed), one session carries a full confusion ledger, and the
/// latency histogram holds a fixed 90/10 fast/slow mix.
fn fixture() -> (Metrics, SessionRegistry) {
    let metrics = Metrics::new();
    for (i, &(field, _, _)) in GLOBAL_COUNTERS.iter().enumerate() {
        let v = 100 + 7 * i as u64;
        match field {
            "sessions_opened" => metrics.sessions_opened.store(v, Ordering::Relaxed),
            "sessions_closed" => metrics.sessions_closed.store(v, Ordering::Relaxed),
            "sessions_evicted" => metrics.sessions_evicted.store(v, Ordering::Relaxed),
            "requests" => metrics.requests.store(v, Ordering::Relaxed),
            "bad_requests" => metrics.bad_requests.store(v, Ordering::Relaxed),
            "rejected" => metrics.rejected.store(v, Ordering::Relaxed),
            "checks" => metrics.checks.store(v, Ordering::Relaxed),
            "cdqs_issued" => metrics.cdqs_issued.store(v, Ordering::Relaxed),
            "cdqs_total" => metrics.cdqs_total.store(v, Ordering::Relaxed),
            "evicted_learned" => metrics.evicted_learned.store(v, Ordering::Relaxed),
            other => panic!("fixture does not cover global counter {other}"),
        }
    }
    // Trace/flight counters: fourth progression (trace_exemplars is
    // derived from the histogram's traced samples below, not stored).
    for (i, &(field, _, _)) in TRACE_COUNTERS.iter().enumerate() {
        let v = 300 + 17 * i as u64;
        match field {
            "traced_requests" => metrics.traced_requests.store(v, Ordering::Relaxed),
            "trace_exemplars" => {}
            "flight_dumps" => metrics.flight_dumps.store(v, Ordering::Relaxed),
            "flight_auto_dumps" => metrics.flight_auto_dumps.store(v, Ordering::Relaxed),
            other => panic!("fixture does not cover trace counter {other}"),
        }
    }
    for _ in 0..90 {
        metrics.check_latency.record(1_000);
    }
    // The slow tail is traced: exemplars render on the latency summary
    // with the *last* (worst-recent) trace id winning each bucket.
    for i in 0..10u64 {
        metrics
            .check_latency
            .record_traced(1_000_000, (0xFEED_u128 << 64) | u128::from(i + 1));
    }

    let registry = SessionRegistry::new(ChtParams::paper_2d(), 4);
    let (s, _) = registry
        .open("planar-2d", SchedMode::Coord, 7)
        .expect("open fixture session");
    s.metrics.checks.store(4, Ordering::Relaxed);
    s.metrics.cdqs_issued.store(10, Ordering::Relaxed);
    s.metrics.cdqs_total.store(20, Ordering::Relaxed);
    s.metrics.collisions.store(2, Ordering::Relaxed);
    s.metrics.true_pos.store(3, Ordering::Relaxed);
    s.metrics.false_pos.store(2, Ordering::Relaxed);
    s.metrics.true_neg.store(4, Ordering::Relaxed);
    s.metrics.false_neg.store(1, Ordering::Relaxed);
    for code in [1u64, 2, 3] {
        s.shard.observe(code, true, 0.0);
    }
    (metrics, registry)
}

/// Distinct values for every persistence counter, same swap-detection idea
/// as the global fixture but in a different arithmetic progression.
fn store_fixture() -> StoreStats {
    let stats = StoreStats::default();
    for (i, &(field, _, _)) in STORE_COUNTERS.iter().enumerate() {
        let v = 500 + 11 * i as u64;
        match field {
            "snapshots_written" => stats.snapshots_written.store(v, Ordering::Relaxed),
            "snapshots_loaded" => stats.snapshots_loaded.store(v, Ordering::Relaxed),
            "wal_bytes" => stats.wal_bytes.store(v, Ordering::Relaxed),
            "warm_hits" => stats.warm_hits.store(v, Ordering::Relaxed),
            "warm_misses" => stats.warm_misses.store(v, Ordering::Relaxed),
            "recovery_replays" => stats.recovery_replays.store(v, Ordering::Relaxed),
            other => panic!("fixture does not cover store counter {other}"),
        }
    }
    stats
}

/// Distinct values for the process-global replay counters, third
/// arithmetic progression. Stores (not adds) so re-running a fixture in
/// the same process stays idempotent.
fn replay_fixture() {
    let stats = replay_stats();
    for (i, &(field, _, _)) in REPLAY_COUNTERS.iter().enumerate() {
        let v = 700 + 13 * i as u64;
        match field {
            "records_read" => stats.records_read.store(v, Ordering::Relaxed),
            "replays_run" => stats.replays_run.store(v, Ordering::Relaxed),
            "backend_errors" => stats.backend_errors.store(v, Ordering::Relaxed),
            "timing_lag_ns" => stats.timing_lag_ns.store(v, Ordering::Relaxed),
            other => panic!("fixture does not cover replay counter {other}"),
        }
    }
}

/// Distinct values for the process-global fleet counters, fifth
/// arithmetic progression (router/replication plane).
fn fleet_fixture() {
    let stats = fleet_stats();
    for (i, &(field, _, _)) in FLEET_COUNTERS.iter().enumerate() {
        let v = 900 + 19 * i as u64;
        match field {
            "sessions_routed" => stats.sessions_routed.store(v, Ordering::Relaxed),
            "snapshots_shipped" => stats.snapshots_shipped.store(v, Ordering::Relaxed),
            "snapshots_received" => stats.snapshots_received.store(v, Ordering::Relaxed),
            "snapshots_rejected" => stats.snapshots_rejected.store(v, Ordering::Relaxed),
            "failovers" => stats.failovers.store(v, Ordering::Relaxed),
            "backend_errors" => stats.backend_errors.store(v, Ordering::Relaxed),
            other => panic!("fixture does not cover fleet counter {other}"),
        }
    }
}

/// A deterministic profiler snapshot: a known stage mix (900 predict /
/// 200 queue-wait / 100 idle out of 1200 samples) so the rendered
/// fractions are exact decimals the golden file can pin.
fn profile_fixture() -> copred_obs::ProfileSnapshot {
    use copred_obs::Stage;
    let mut p = copred_obs::Profile::default();
    p.add_path(0, &[Stage::Execute, Stage::Predict], 900);
    p.add_path(0, &[Stage::QueueWait], 200);
    p.add_path(1, &[], 100); // idle
    p.drops = 3;
    p.skews = 1;
    p.snapshot()
}

fn render_fixture() -> String {
    let (metrics, registry) = fixture();
    replay_fixture();
    fleet_fixture();
    render_prometheus(
        &metrics,
        &registry.sessions_snapshot(),
        3,
        &store_fixture(),
        &profile_fixture(),
    )
}

fn count(samples: &[PromSample], name: &str) -> usize {
    samples.iter().filter(|s| s.name == name).count()
}

fn value(samples: &[PromSample], name: &str) -> f64 {
    let hits: Vec<&PromSample> = samples.iter().filter(|s| s.name == name).collect();
    assert_eq!(hits.len(), 1, "expected exactly one {name}");
    hits[0].value
}

#[test]
fn rendered_page_matches_golden_file() {
    let page = render_fixture();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &page).expect("write golden");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with REGEN_GOLDEN=1 to create it");
    assert_eq!(
        page, golden,
        "metric names/layout changed; if intentional, update ROADMAP.md's \
         metric-name contract and regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn every_global_counter_appears_exactly_once_with_prefix() {
    let page = render_fixture();
    let samples = parse_prometheus(&page).expect("rendered page must parse");
    for (i, &(_, name, _)) in GLOBAL_COUNTERS.iter().enumerate() {
        assert!(name.starts_with("copred_"), "{name} lacks the prefix");
        assert_eq!(count(&samples, name), 1, "{name} must appear exactly once");
        // The fixture stored 100 + 7i into the i-th counter: a swapped
        // field↔name mapping shows up as a wrong value here.
        assert_eq!(value(&samples, name), (100 + 7 * i) as f64, "{name}");
    }
    for (i, &(_, name, _)) in STORE_COUNTERS.iter().enumerate() {
        assert!(name.starts_with("copred_store_"), "{name} lacks the prefix");
        assert_eq!(count(&samples, name), 1, "{name} must appear exactly once");
        assert_eq!(value(&samples, name), (500 + 11 * i) as f64, "{name}");
    }
    for (i, &(_, name, _)) in REPLAY_COUNTERS.iter().enumerate() {
        assert!(
            name.starts_with("copred_replay_"),
            "{name} lacks the prefix"
        );
        assert_eq!(count(&samples, name), 1, "{name} must appear exactly once");
        assert_eq!(value(&samples, name), (700 + 13 * i) as f64, "{name}");
    }
    for (i, &(_, name, _)) in FLEET_COUNTERS.iter().enumerate() {
        assert!(name.starts_with("copred_fleet_"), "{name} lacks the prefix");
        assert_eq!(count(&samples, name), 1, "{name} must appear exactly once");
        assert_eq!(value(&samples, name), (900 + 19 * i) as f64, "{name}");
    }
    for (i, &(field, name, _)) in TRACE_COUNTERS.iter().enumerate() {
        assert!(
            name.starts_with("copred_trace_") || name.starts_with("copred_flight_"),
            "{name} outside the trace/flight namespace"
        );
        assert_eq!(count(&samples, name), 1, "{name} must appear exactly once");
        let expect = if field == "trace_exemplars" {
            10.0 // ten traced records, every offer displaced its bucket slot
        } else {
            (300 + 17 * i) as f64
        };
        assert_eq!(value(&samples, name), expect, "{name}");
    }
    for &(_, name, _) in SESSION_COUNTERS {
        assert!(name.starts_with("copred_"), "{name} lacks the prefix");
        assert_eq!(count(&samples, name), 1, "{name}: one session in fixture");
    }
    // Nothing in the page escapes the namespace.
    for s in &samples {
        assert!(
            s.name.starts_with("copred_"),
            "unprefixed metric {}",
            s.name
        );
    }
    // Summary + gauges present.
    assert_eq!(count(&samples, "copred_check_latency_ns"), 3, "quantiles");
    assert_eq!(value(&samples, "copred_check_latency_ns_count"), 100.0);
    assert_eq!(value(&samples, "copred_check_latency_ns_sum"), 10_090_000.0);
    assert_eq!(value(&samples, "copred_worker_queue_depth"), 3.0);
    assert_eq!(value(&samples, "copred_sessions_open"), 1.0);
}

#[test]
fn profile_series_pin_stage_labels_and_fractions() {
    let page = render_fixture();
    let samples = parse_prometheus(&page).expect("parse");
    assert_eq!(value(&samples, "copred_profile_samples_total"), 1200.0);
    assert_eq!(value(&samples, "copred_profile_drops_total"), 3.0);
    assert_eq!(value(&samples, "copred_profile_skews_total"), 1.0);
    assert_eq!(value(&samples, "copred_profile_threads"), 2.0);
    // One stage_fraction series per stage, in Stage::ALL order — the
    // label set is a stability contract even when fractions are 0.
    let fracs: Vec<&PromSample> = samples
        .iter()
        .filter(|s| s.name == "copred_profile_stage_fraction")
        .collect();
    assert_eq!(fracs.len(), copred_obs::Stage::ALL.len());
    for (sample, stage) in fracs.iter().zip(copred_obs::Stage::ALL) {
        assert_eq!(sample.label("stage"), Some(stage.label()));
    }
    let by = |stage: &str| {
        fracs
            .iter()
            .find(|s| s.label("stage") == Some(stage))
            .unwrap_or_else(|| panic!("missing stage {stage}"))
            .value
    };
    // 900 predict-leaf + 200 queue-wait-leaf of 1200 total (idle in the
    // denominator): fractions are exact and sum to ≤ 1.0.
    assert_eq!(by("predict"), 0.75);
    assert!((by("queue_wait") - 200.0 / 1200.0).abs() < 1e-12);
    assert_eq!(by("decode"), 0.0);
    let total: f64 = fracs.iter().map(|s| s.value).sum();
    assert!(total <= 1.0 + 1e-9, "stage fractions sum {total}");
    assert_eq!(
        value(&samples, "copred_profile_queue_wait_fraction"),
        200.0 / 1200.0
    );
}

#[test]
fn latency_quantiles_carry_trace_exemplars() {
    let page = render_fixture();
    let samples = parse_prometheus(&page).expect("parse");
    // The worst recent traced sample was the last offer into the slow
    // bucket: trace (0xFEED << 64) | 10 at 1_000_000 ns. Every quantile
    // resolves to it — the tail bucket directly, the fast bucket via the
    // scan-up fallback.
    let want_hex = format!("{:032x}", (0xFEED_u128 << 64) | 10);
    for q in ["0.5", "0.95", "0.99"] {
        let sample = samples
            .iter()
            .find(|s| s.name == "copred_check_latency_ns" && s.label("quantile") == Some(q))
            .unwrap_or_else(|| panic!("missing quantile {q}"));
        let (labels, ns) = sample.exemplar.as_ref().expect("exemplar attached");
        assert_eq!(*ns, 1_000_000.0, "exemplar value at q={q}");
        assert_eq!(
            labels
                .iter()
                .find(|(k, _)| k == "trace_id")
                .map(|(_, v)| v.as_str()),
            Some(want_hex.as_str()),
            "exemplar trace id at q={q}"
        );
    }
}

#[test]
fn session_series_carry_labels_and_consistent_ledger() {
    let page = render_fixture();
    let samples = parse_prometheus(&page).expect("parse");
    let get = |name: &str| -> &PromSample {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let tp = get("copred_session_true_pos_total");
    assert_eq!(tp.label("session"), Some("1"));
    assert_eq!(tp.label("mode"), Some("coord"));
    let ledger: f64 = [
        "copred_session_true_pos_total",
        "copred_session_false_pos_total",
        "copred_session_true_neg_total",
        "copred_session_false_neg_total",
    ]
    .iter()
    .map(|n| get(n).value)
    .sum();
    assert_eq!(ledger, get("copred_session_cdqs_issued_total").value);
    assert_eq!(get("copred_session_precision").value, 0.6);
    assert_eq!(get("copred_session_recall").value, 0.75);
    assert_eq!(get("copred_session_cht_occupancy").value, 3.0);
}

#[test]
fn live_endpoint_serves_scrapeable_page() {
    let server = Server::start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let metrics_addr = server.metrics_addr().expect("endpoint enabled");

    let mut c = copred_service::ServiceClient::connect(server.local_addr()).expect("connect");
    let session = c.open("planar-2d", 1, SchedMode::Coord, 3).expect("open");
    let _ = c.stats(Some(session)).expect("stats");

    let body = http_get(metrics_addr, "/metrics").expect("scrape");
    let samples = parse_prometheus(&body).expect("scrape must parse");
    let requests = samples
        .iter()
        .find(|s| s.name == "copred_requests_total")
        .expect("requests counter");
    assert_eq!(
        requests.value,
        server.metrics().requests.load(Ordering::Relaxed) as f64
    );
    let open = samples
        .iter()
        .find(|s| s.name == "copred_sessions_open")
        .expect("open gauge");
    assert_eq!(open.value, 1.0);
    // The scrape and the in-process renderer agree byte-for-byte modulo
    // metrics that moved between the two reads; re-render and compare
    // structure instead: same metric-name set.
    let rendered = server.render_prometheus();
    let rendered_names: std::collections::BTreeSet<String> = parse_prometheus(&rendered)
        .expect("parse")
        .into_iter()
        .map(|s| s.name)
        .collect();
    let scraped_names: std::collections::BTreeSet<String> =
        samples.into_iter().map(|s| s.name).collect();
    assert_eq!(rendered_names, scraped_names);
}

#[test]
fn endpoint_is_absent_by_default() {
    let server = Server::start(ServerConfig::default()).expect("start server");
    assert!(server.metrics_addr().is_none());
}
