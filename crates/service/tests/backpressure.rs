//! Backpressure integration test: overflowing the bounded queues must
//! surface as `err retry_after` on the wire — never a dropped connection,
//! never a deadlock — and a backpressured client that retries as told
//! must eventually get its results.

use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_service::protocol::{Response, SchedMode, ServiceError};
use copred_service::{Server, ServerConfig, ServiceClient};
use copred_trace::{MotionTrace, Stage, TraceCdq};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

fn motion(n_poses: usize) -> MotionTrace {
    MotionTrace {
        stage: Stage::Explore,
        poses: (0..n_poses)
            .map(|i| Config::new(vec![i as f64 * 0.1, 0.0]))
            .collect(),
        cdqs: (0..n_poses)
            .map(|i| TraceCdq {
                pose_idx: i as u32,
                link_idx: 0,
                center: Vec3::new(i as f64 * 0.1, 0.0, 0.0),
                colliding: false,
                obstacle_tests: 2,
            })
            .collect(),
    }
}

/// A server sized to overflow instantly: one slow worker, a one-job
/// global queue, a one-job session queue.
fn tiny_server() -> Server {
    Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        session_queue_cap: 1,
        max_sessions: 4,
        worker_delay_ms: 40,
        ..ServerConfig::default()
    })
    .expect("start server")
}

#[test]
fn overflow_returns_retry_after_and_connection_survives() {
    let server = tiny_server();
    let addr = server.local_addr();

    let mut opener = ServiceClient::connect(addr).expect("connect");
    let session = opener
        .open("planar-2d", 1, SchedMode::Naive, 7)
        .expect("open");

    // Hammer one session from several connections at once. With a
    // 1-deep session queue and a 40 ms worker stall, concurrent sends
    // must overflow.
    let rejected = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut c = ServiceClient::connect(addr).expect("connect");
                for _ in 0..3 {
                    match c
                        .check_motions_once(session, vec![motion(3)])
                        .expect("io ok")
                    {
                        Response::Results { results: rs, .. } => {
                            assert_eq!(rs.len(), 1);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Error(ServiceError::RetryAfter { ms, .. }) => {
                            assert!(ms > 0, "retry hint must be positive");
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                // The key property: a connection that was just bounced is
                // still healthy. Retrying per the hint must succeed.
                let (rs, _retries) = c
                    .check_motions(session, &[motion(2)], 200)
                    .expect("retry until accepted");
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].cdqs_total, 2);
            });
        }
    });

    assert!(
        rejected.load(Ordering::Relaxed) > 0,
        "a 1-deep queue under 12 concurrent sends must bounce some"
    );
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "the queue must still make progress while bouncing"
    );

    // Server-side accounting saw the rejections.
    let stats = opener.stats(None).expect("stats");
    let get =
        |k: &str| copred_service::client::stat_u64(&stats, k).unwrap_or_else(|| panic!("stat {k}"));
    assert!(get("rejected") >= rejected.load(Ordering::Relaxed) as u64);
    assert!(get("checks") >= completed.load(Ordering::Relaxed) as u64);

    opener.close(session).expect("close");
}

#[test]
fn global_queue_overflow_names_the_server_bound() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        // Session bound higher than the global bound, so the global
        // queue is what overflows.
        session_queue_cap: 16,
        max_sessions: 4,
        worker_delay_ms: 40,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();

    let mut opener = ServiceClient::connect(addr).expect("connect");
    let session = opener
        .open("planar-2d", 1, SchedMode::Naive, 7)
        .expect("open");

    let saw_server_full = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| {
                let mut c = ServiceClient::connect(addr).expect("connect");
                for _ in 0..4 {
                    match c
                        .check_motions_once(session, vec![motion(2)])
                        .expect("io ok")
                    {
                        Response::Results { .. } => {}
                        Response::Error(ServiceError::RetryAfter { message, .. }) => {
                            if message.contains("server queue") {
                                saw_server_full.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            });
        }
    });
    // Up to 6 concurrent jobs versus capacity 1 + 1 executing: overflow
    // is turned away, and with the session cap out of reach the reported
    // reason is the global bound.
    assert!(
        saw_server_full.load(Ordering::Relaxed) > 0,
        "global bound never reported"
    );
}
