//! Property-based tests for the persistence layer (ISSUE 5 satellites):
//! snapshot round-trips are bit-exact across every counter width and both
//! strategy families, and WAL replay tolerates a tail torn at *every* byte
//! offset of the final record without panicking, yielding the consistent
//! prefix table.

use copred_core::{ChtParams, Strategy};
use copred_store::snapshot::{decode, encode};
use copred_store::wal::{replay, segments, Wal, WAL_RECORD_LEN};
use copred_store::{TableImage, WalRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn params(bits: u32, counter_bits: u32, aggressive: bool) -> ChtParams {
    ChtParams {
        bits,
        counter_bits,
        strategy: if aggressive {
            Strategy::most_aggressive()
        } else {
            Strategy::new(1.0)
        },
        update_fraction: if counter_bits == 1 { 0.0 } else { 0.125 },
    }
}

fn random_image(p: ChtParams, fill_seed: u64) -> TableImage {
    let mut image = TableImage::empty(p);
    image.u_state = fill_seed.max(1);
    let max = ((1u32 << p.counter_bits) - 1) as u8;
    let mut x = fill_seed | 1;
    for cell in &mut image.cells {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let span = u32::from(max) + 1;
        cell.0 = (x as u32 % span) as u8;
        cell.1 = if p.counter_bits == 1 {
            0
        } else {
            ((x >> 8) as u32 % span) as u8
        };
    }
    image
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copred-store-prop-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_roundtrip_bit_exact_all_widths(
        counter_bits in 1u32..=8,
        aggressive in any::<bool>(),
        bits in 4u32..=10,
        fill_seed in any::<u64>(),
    ) {
        let image = random_image(params(bits, counter_bits, aggressive), fill_seed);
        let bytes = encode(&image);
        let back = decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back, image);
    }

    #[test]
    fn snapshot_decode_never_panics_on_mutation(
        counter_bits in 1u32..=8,
        fill_seed in any::<u64>(),
        flip_at in 0usize..4096,
        flip_mask in 1u8..=255,
    ) {
        let image = random_image(params(8, counter_bits, false), fill_seed);
        let mut bytes = encode(&image);
        let at = flip_at % bytes.len();
        bytes[at] ^= flip_mask;
        // Either the flip is caught (Err) or it landed somewhere harmless
        // it genuinely decodes from — but it must never panic.
        if let Ok(img) = decode(&bytes) {
            prop_assert_eq!(img.cells.len(), img.params.entries());
        }
    }

    #[test]
    fn wal_torn_tail_never_panics_and_is_prefix_consistent(
        n_records in 1usize..60,
        code_seed in any::<u64>(),
    ) {
        let p = params(8, 4, false);
        let dir = fresh_dir();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        let mut x = code_seed | 1;
        let records: Vec<WalRecord> = (0..n_records)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                WalRecord { code: x, colliding: x & 2 != 0 }
            })
            .collect();
        for r in &records {
            wal.append(*r).unwrap();
        }
        drop(wal);
        let seg = segments(&dir).pop().unwrap().1;
        let full = std::fs::read(&seg).unwrap();
        // Truncate the tail at every byte offset of the last record.
        let last_start = full.len() - WAL_RECORD_LEN;
        for cut in last_start..full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let mut image = TableImage::empty(p);
            let summary = replay(&dir, &mut image);
            let whole = (cut - 8) / WAL_RECORD_LEN;
            prop_assert_eq!(summary.applied as usize, whole, "cut at {}", cut);
            let mut expect = TableImage::empty(p);
            for r in &records[..whole] {
                expect.apply_record(r.code, r.colliding);
            }
            prop_assert_eq!(&image.cells, &expect.cells, "cut at {}", cut);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
