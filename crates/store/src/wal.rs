//! Append-only write-ahead log of applied CHT observe writes.
//!
//! Segments are named `wal-NNNNNN.log`, each starting with the 8-byte magic
//! `CPRDWAL1` followed by fixed 10-byte records:
//!
//! ```text
//! offset  size  field
//!      0     8  CDQ code (little-endian)
//!      8     1  flags (bit 0: colliding)
//!      9     1  checksum: XOR of bytes 0..9, then XOR 0xA5
//! ```
//!
//! Only *applied* writes are logged (the `U` gate ran before logging), so
//! replay is a pure saturating increment — bit-identical to the live table
//! with no RNG involved. Replay tolerates a torn tail: the first short or
//! checksum-failing record ends the replay, dropping the remainder of that
//! segment and every later segment (appends are strictly ordered, so
//! everything before the tear is a consistent prefix). Reopening after a
//! crash starts a fresh segment rather than appending past a tear.
//!
//! The record and segment format is a stability contract (ROADMAP.md).

use crate::snapshot::TableImage;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// WAL segment magic (also carries the format version: `…WAL1`).
pub const WAL_MAGIC: &[u8; 8] = b"CPRDWAL1";

/// Bytes per record.
pub const WAL_RECORD_LEN: usize = 10;

/// One logged observe write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The CDQ code that was written.
    pub code: u64,
    /// Whether the outcome was a collision (`false` = an applied NONCOLL
    /// write that passed the `U` gate).
    pub colliding: bool,
}

impl WalRecord {
    /// Serializes the record.
    pub fn encode(&self) -> [u8; WAL_RECORD_LEN] {
        let mut b = [0u8; WAL_RECORD_LEN];
        b[0..8].copy_from_slice(&self.code.to_le_bytes());
        b[8] = u8::from(self.colliding);
        b[9] = checksum(&b);
        b
    }

    /// Deserializes a record, returning `None` on checksum failure.
    pub fn decode(b: &[u8; WAL_RECORD_LEN]) -> Option<Self> {
        if checksum(b) != b[9] || b[8] > 1 {
            return None;
        }
        Some(WalRecord {
            code: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            colliding: b[8] != 0,
        })
    }
}

fn checksum(b: &[u8; WAL_RECORD_LEN]) -> u8 {
    b[..9].iter().fold(0xA5u8, |acc, &x| acc ^ x)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Existing segment `(index, path)` pairs in ascending index order.
pub fn segments(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(idx, _)| *idx);
    out
}

/// Result of a replay pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Records applied to the image.
    pub applied: u64,
    /// Whether a torn tail (short or corrupt record / bad segment header)
    /// cut the replay short.
    pub torn: bool,
}

/// Replays every valid record under `dir` into `image`, in append order,
/// stopping at the first tear. Missing directory = nothing to replay.
pub fn replay(dir: &Path, image: &mut TableImage) -> ReplaySummary {
    let _span = copred_obs::span("store", "wal_replay");
    let mut summary = ReplaySummary::default();
    for (_, path) in segments(dir) {
        let Ok(bytes) = std::fs::read(&path) else {
            summary.torn = true;
            return summary;
        };
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            summary.torn = true;
            return summary;
        }
        let mut body = &bytes[WAL_MAGIC.len()..];
        while !body.is_empty() {
            if body.len() < WAL_RECORD_LEN {
                summary.torn = true;
                return summary;
            }
            let chunk: &[u8; WAL_RECORD_LEN] = body[..WAL_RECORD_LEN].try_into().unwrap();
            let Some(rec) = WalRecord::decode(chunk) else {
                summary.torn = true;
                return summary;
            };
            image.apply_record(rec.code, rec.colliding);
            summary.applied += 1;
            body = &body[WAL_RECORD_LEN..];
        }
    }
    summary
}

/// An appending WAL handle for one table directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: Option<File>,
    seg_index: u64,
    seg_bytes: u64,
    segment_limit: u64,
    /// Segments started since open/reset — the in-memory compaction
    /// trigger, so hot appends never stat the directory.
    started: u64,
}

impl Wal {
    /// Opens the log for appending. Always starts a *new* segment on first
    /// append (never extends an existing file — the previous tail may be
    /// torn, and replay drops everything after a tear).
    pub fn open(dir: &Path, segment_limit: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let next = segments(dir).last().map_or(0, |(idx, _)| idx + 1);
        Ok(Wal {
            dir: dir.to_path_buf(),
            file: None,
            seg_index: next,
            seg_bytes: 0,
            segment_limit: segment_limit.max(WAL_RECORD_LEN as u64 + 8),
            started: 0,
        })
    }

    /// Appends one record, rotating segments at the size limit. Returns the
    /// bytes written (record plus segment header when one was started).
    pub fn append(&mut self, rec: WalRecord) -> std::io::Result<u64> {
        let mut written = 0u64;
        if self.file.is_none() || self.seg_bytes >= self.segment_limit {
            let path = segment_path(&self.dir, self.seg_index);
            let mut f = OpenOptions::new().create_new(true).write(true).open(path)?;
            f.write_all(WAL_MAGIC)?;
            self.seg_index += 1;
            self.started += 1;
            self.seg_bytes = WAL_MAGIC.len() as u64;
            written += WAL_MAGIC.len() as u64;
            self.file = Some(f);
        }
        let f = self.file.as_mut().expect("segment open");
        f.write_all(&rec.encode())?;
        self.seg_bytes += WAL_RECORD_LEN as u64;
        written += WAL_RECORD_LEN as u64;
        Ok(written)
    }

    /// Number of segments on disk.
    pub fn segment_count(&self) -> usize {
        segments(&self.dir).len()
    }

    /// Segments started by this handle since open or the last
    /// [`reset`](Self::reset) (no directory scan).
    pub fn segments_started(&self) -> u64 {
        self.started
    }

    /// Deletes every segment (after their contents were folded into a
    /// snapshot) and starts over with a fresh segment index.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file = None;
        self.seg_bytes = 0;
        self.started = 0;
        for (_, path) in segments(&self.dir) {
            std::fs::remove_file(path)?;
        }
        self.seg_index = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_core::{ChtParams, Strategy};

    fn params() -> ChtParams {
        ChtParams {
            bits: 8,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copred-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_roundtrip_and_checksum() {
        let r = WalRecord {
            code: 0xDEAD_BEEF_CAFE,
            colliding: true,
        };
        let b = r.encode();
        assert_eq!(WalRecord::decode(&b), Some(r));
        let mut bad = b;
        bad[3] ^= 0x10;
        assert_eq!(WalRecord::decode(&bad), None);
        let mut flags = b;
        flags[8] = 7; // invalid flag byte, even with a fixed checksum
        flags[9] = checksum(&flags);
        assert_eq!(WalRecord::decode(&flags), None);
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(&dir, 1 << 16).unwrap();
        let mut expect = TableImage::empty(params());
        for i in 0..500u64 {
            let rec = WalRecord {
                code: i * 7,
                colliding: i % 3 != 0,
            };
            wal.append(rec).unwrap();
            expect.apply_record(rec.code, rec.colliding);
        }
        let mut image = TableImage::empty(params());
        let summary = replay(&dir, &mut image);
        assert_eq!(
            summary,
            ReplaySummary {
                applied: 500,
                torn: false
            }
        );
        assert_eq!(image.cells, expect.cells);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmp_dir("rotate");
        // Tiny limit: 8-byte header + room for two records per segment.
        let mut wal = Wal::open(&dir, 8 + 2 * WAL_RECORD_LEN as u64).unwrap();
        for i in 0..10u64 {
            wal.append(WalRecord {
                code: i,
                colliding: true,
            })
            .unwrap();
        }
        assert!(wal.segment_count() >= 3, "got {}", wal.segment_count());
        let mut image = TableImage::empty(params());
        let summary = replay(&dir, &mut image);
        assert_eq!(summary.applied, 10);
        for i in 0..10usize {
            assert_eq!(image.cells[i], (1, 0));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_at_every_offset_is_prefix_consistent() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, 1 << 16).unwrap();
        let records: Vec<WalRecord> = (0..20u64)
            .map(|i| WalRecord {
                code: i,
                colliding: i % 2 == 0,
            })
            .collect();
        for r in &records {
            wal.append(*r).unwrap();
        }
        drop(wal);
        let seg = segments(&dir).pop().unwrap().1;
        let full = std::fs::read(&seg).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let mut image = TableImage::empty(params());
            let summary = replay(&dir, &mut image);
            // Applied count is the number of whole records before the cut.
            let whole = cut.saturating_sub(WAL_MAGIC.len()) / WAL_RECORD_LEN;
            assert_eq!(summary.applied as usize, whole, "cut at {cut}");
            // A cut on a record boundary leaves a well-formed shorter log —
            // not a tear. Everything else is.
            let on_boundary =
                cut >= WAL_MAGIC.len() && (cut - WAL_MAGIC.len()).is_multiple_of(WAL_RECORD_LEN);
            assert_eq!(
                summary.torn,
                cut < full.len() && !on_boundary,
                "cut at {cut}"
            );
            let mut expect = TableImage::empty(params());
            for r in &records[..whole] {
                expect.apply_record(r.code, r.colliding);
            }
            assert_eq!(image.cells, expect.cells, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_in_middle_segment_drops_later_segments() {
        let dir = tmp_dir("midtear");
        let mut wal = Wal::open(&dir, 8 + 2 * WAL_RECORD_LEN as u64).unwrap();
        for i in 0..6u64 {
            wal.append(WalRecord {
                code: i,
                colliding: true,
            })
            .unwrap();
        }
        drop(wal);
        let segs = segments(&dir);
        assert!(segs.len() >= 3);
        // Corrupt a record in the first segment.
        let first = &segs[0].1;
        let mut bytes = std::fs::read(first).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();
        let mut image = TableImage::empty(params());
        let summary = replay(&dir, &mut image);
        assert!(summary.torn);
        assert_eq!(summary.applied, 1, "only the first intact record");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_starts_fresh_segment() {
        let dir = tmp_dir("reopen");
        let mut wal = Wal::open(&dir, 1 << 16).unwrap();
        wal.append(WalRecord {
            code: 1,
            colliding: true,
        })
        .unwrap();
        drop(wal);
        let mut wal = Wal::open(&dir, 1 << 16).unwrap();
        wal.append(WalRecord {
            code: 2,
            colliding: true,
        })
        .unwrap();
        assert_eq!(wal.segment_count(), 2);
        let mut image = TableImage::empty(params());
        assert_eq!(replay(&dir, &mut image).applied, 2);
        wal.reset().unwrap();
        assert_eq!(wal.segment_count(), 0);
        let mut image = TableImage::empty(params());
        assert_eq!(replay(&dir, &mut image).applied, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
