//! Versioned binary snapshots of CHT state.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "CPRDSNAP"
//!      8     4  format version (currently 1)
//!     12     4  address bits
//!     16     4  counter bits
//!     20     8  strategy S (f64 bit pattern)
//!     28     8  update fraction U (f64 bit pattern)
//!     36     8  u-draw RNG state (xorshift64 word; 0 when unknown)
//!     44     4  payload length in bytes
//!     48     4  CRC-32/IEEE over the payload
//!     52     …  payload: bit-packed counters, LSB-first
//! ```
//!
//! The payload stores `entry_bits()` per cell in entry order: a single
//! `COLL != 0` bit in 1-bit mode, otherwise `counter_bits` of `COLL`
//! followed by `counter_bits` of `NONCOLL`. This mirrors the SRAM sizing of
//! the paper's hardware table, so a snapshot is within a header of the
//! modeled on-chip footprint. The format is a stability contract
//! (ROADMAP.md): changing it requires bumping [`SNAPSHOT_VERSION`].

use crate::crc::crc32;
use crate::StoreError;
use copred_core::{Cht, ChtParams, Strategy};
use std::path::Path;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CPRDSNAP";

const HEADER_LEN: usize = 52;

/// Widest table the store will materialize (matches `ConcurrentCht`'s dense
/// limit); also bounds what a decoded header may ask us to allocate.
const MAX_BITS: u32 = 24;

/// An owned, plain-memory image of a CHT: parameters, the `U`-policy RNG
/// word, and every entry's `(COLL, NONCOLL)` counters in entry order.
///
/// This is the interchange type between live tables (`copred_core::Cht`,
/// `copred_swexec::ConcurrentCht` via `export_cells`/`load_cells`), the
/// snapshot codec, and WAL replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Table sizing/policy parameters.
    pub params: ChtParams,
    /// The session's xorshift64 u-draw state at snapshot time (0 = unknown;
    /// warm-start callers remap 0 to a fresh seed).
    pub u_state: u64,
    /// `(COLL, NONCOLL)` for every entry; length is `params.entries()`.
    pub cells: Vec<(u8, u8)>,
}

impl TableImage {
    /// An all-zero image for `params`.
    ///
    /// # Panics
    ///
    /// Panics when `params.bits` exceeds 24 (store images are dense).
    pub fn empty(params: ChtParams) -> Self {
        assert!(
            params.bits >= 1 && params.bits <= MAX_BITS,
            "store images must be dense (1..=24 address bits)"
        );
        TableImage {
            u_state: 0,
            cells: vec![(0, 0); params.entries()],
            params,
        }
    }

    /// Captures a reference table's counters.
    pub fn from_cht(cht: &Cht) -> Self {
        let params = *cht.params();
        let mut image = TableImage::empty(params);
        for code in 0..params.entries() as u64 {
            image.cells[code as usize] = cht.counters(code);
        }
        image
    }

    /// Writes this image's counters into a reference table.
    ///
    /// # Panics
    ///
    /// Panics when the table's parameters differ from the image's.
    pub fn apply_to_cht(&self, cht: &mut Cht) {
        assert_eq!(cht.params(), &self.params, "image/table parameter mismatch");
        for (code, &(c, n)) in self.cells.iter().enumerate() {
            cht.set_counters(code as u64, c, n);
        }
    }

    /// Entries with any recorded history.
    pub fn occupancy(&self) -> usize {
        self.cells.iter().filter(|&&(c, n)| c > 0 || n > 0).count()
    }

    /// Applies one logged observe write: a saturating increment of the
    /// addressed counter. This is the WAL replay rule; it matches
    /// `ConcurrentCht::observe` for *applied* writes exactly (the `U` gate
    /// already ran before the record was logged). Free records in 1-bit
    /// mode are ignored — a live 1-bit table never applies them, so any
    /// found in a log are stray corruption tolerated rather than replayed.
    pub fn apply_record(&mut self, code: u64, colliding: bool) {
        let max = ((1u32 << self.params.counter_bits) - 1) as u8;
        let i = (code & ((1u64 << self.params.bits) - 1)) as usize;
        let cell = &mut self.cells[i];
        if colliding {
            cell.0 = cell.0.saturating_add(1).min(max);
        } else if self.params.counter_bits > 1 {
            cell.1 = cell.1.saturating_add(1).min(max);
        }
    }

    /// Folds another image of the same geometry into this one by per-cell
    /// component-wise maximum — the replication merge rule. Counters only
    /// grow under `apply_record`, so max is a join: merging is commutative,
    /// associative, and idempotent, which is what makes duplicate and
    /// out-of-order snapshot pushes between peers converge instead of
    /// double-counting. A zero `u_state` on this image (unknown) adopts the
    /// other's; a nonzero one is kept — the pushing side is the live
    /// lineage, so its RNG word wins.
    ///
    /// # Errors
    ///
    /// [`StoreError::Mismatch`] when the two images' parameters differ
    /// (their cells address different tables; merging would be
    /// meaningless).
    pub fn merge_max(&mut self, other: &TableImage) -> Result<(), StoreError> {
        if self.params != other.params {
            return Err(StoreError::Mismatch(format!(
                "merge of {}-bit/{}-wide image with {}-bit/{}-wide image",
                self.params.bits,
                self.params.counter_bits,
                other.params.bits,
                other.params.counter_bits
            )));
        }
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            mine.0 = mine.0.max(theirs.0);
            mine.1 = mine.1.max(theirs.1);
        }
        if self.u_state == 0 {
            self.u_state = other.u_state;
        }
        Ok(())
    }
}

struct BitWriter {
    bytes: Vec<u8>,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            bit: 0,
        }
    }

    /// Appends the low `width` bits of `v`, LSB-first.
    fn push(&mut self, v: u8, width: u32) {
        for k in 0..width {
            if self.bit == 0 {
                self.bytes.push(0);
            }
            if (v >> k) & 1 != 0 {
                *self.bytes.last_mut().unwrap() |= 1 << self.bit;
            }
            self.bit = (self.bit + 1) % 8;
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl BitReader<'_> {
    fn pull(&mut self, width: u32) -> Option<u8> {
        let mut v = 0u8;
        for k in 0..width {
            let byte = self.bytes.get(self.pos / 8)?;
            if (byte >> (self.pos % 8)) & 1 != 0 {
                v |= 1 << k;
            }
            self.pos += 1;
        }
        Some(v)
    }
}

/// Serializes an image to the versioned snapshot format.
pub fn encode(image: &TableImage) -> Vec<u8> {
    let p = &image.params;
    debug_assert_eq!(image.cells.len(), p.entries());
    let mut w = BitWriter::new();
    for &(c, n) in &image.cells {
        if p.counter_bits == 1 {
            w.push(u8::from(c != 0), 1);
        } else {
            w.push(c, p.counter_bits);
            w.push(n, p.counter_bits);
        }
    }
    let payload = w.bytes;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&p.bits.to_le_bytes());
    out.extend_from_slice(&p.counter_bits.to_le_bytes());
    out.extend_from_slice(&p.strategy.s().to_bits().to_le_bytes());
    out.extend_from_slice(&p.update_fraction.to_bits().to_le_bytes());
    out.extend_from_slice(&image.u_state.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn le_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Deserializes a snapshot, validating magic, version, parameter ranges,
/// payload length, and CRC. Corruption is an error, never a panic.
pub fn decode(bytes: &[u8]) -> Result<TableImage, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "short header: {} bytes",
            bytes.len()
        )));
    }
    if &bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = le_u32(bytes, 8);
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let bits = le_u32(bytes, 12);
    let counter_bits = le_u32(bytes, 16);
    if !(1..=MAX_BITS).contains(&bits) {
        return Err(StoreError::Corrupt(format!("bad address bits {bits}")));
    }
    if !(1..=8).contains(&counter_bits) {
        return Err(StoreError::Corrupt(format!(
            "bad counter bits {counter_bits}"
        )));
    }
    let s = f64::from_bits(le_u64(bytes, 20));
    if !(s.is_finite() && s >= 0.0) {
        return Err(StoreError::Corrupt(format!("bad strategy S {s}")));
    }
    let u = f64::from_bits(le_u64(bytes, 28));
    if !(0.0..=1.0).contains(&u) {
        return Err(StoreError::Corrupt(format!("bad update fraction {u}")));
    }
    let u_state = le_u64(bytes, 36);
    let payload_len = le_u32(bytes, 44) as usize;
    let crc = le_u32(bytes, 48);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(StoreError::Corrupt(format!(
            "payload length {} != declared {payload_len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt("payload CRC mismatch".into()));
    }
    let params = ChtParams {
        bits,
        counter_bits,
        strategy: Strategy::new(s),
        update_fraction: u,
    };
    let entries = params.entries();
    let expect_bytes = (entries as u64 * u64::from(params.entry_bits())).div_ceil(8) as usize;
    if payload_len != expect_bytes {
        return Err(StoreError::Corrupt(format!(
            "payload is {payload_len} bytes, table needs {expect_bytes}"
        )));
    }
    let mut r = BitReader {
        bytes: payload,
        pos: 0,
    };
    let mut cells = Vec::with_capacity(entries);
    let max = ((1u32 << counter_bits) - 1) as u8;
    for _ in 0..entries {
        let (c, n) = if counter_bits == 1 {
            (r.pull(1).unwrap(), 0)
        } else {
            (r.pull(counter_bits).unwrap(), r.pull(counter_bits).unwrap())
        };
        cells.push((c.min(max), n.min(max)));
    }
    Ok(TableImage {
        params,
        u_state,
        cells,
    })
}

/// Atomically writes a snapshot: encode, write to `<path>.tmp`, fsync,
/// rename over `path`. Returns the byte count written.
pub fn write_snapshot(path: &Path, image: &TableImage) -> Result<u64, StoreError> {
    let _span = copred_obs::span("store", "snapshot_write");
    let bytes = encode(image);
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<TableImage, StoreError> {
    let _span = copred_obs::span("store", "snapshot_read");
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(counter_bits: u32, s: f64, u: f64) -> ChtParams {
        ChtParams {
            bits: 8,
            counter_bits,
            strategy: Strategy::new(s),
            update_fraction: u,
        }
    }

    fn filled(p: ChtParams, seed: u64) -> TableImage {
        let mut image = TableImage::empty(p);
        image.u_state = seed | 1;
        let max = ((1u32 << p.counter_bits) - 1) as u8;
        let mut x = seed | 1;
        for cell in &mut image.cells {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let span = u32::from(max) + 1;
            cell.0 = (x as u32 % span) as u8;
            cell.1 = if p.counter_bits == 1 {
                0
            } else {
                ((x >> 8) as u32 % span) as u8
            };
        }
        image
    }

    #[test]
    fn roundtrip_all_counter_widths() {
        for cb in 1..=8 {
            for s in [0.0, 1.0] {
                let image = filled(params(cb, s, 0.125), 0xABCD + u64::from(cb));
                let back = decode(&encode(&image)).unwrap();
                assert_eq!(back, image, "width {cb}, S {s}");
            }
        }
    }

    #[test]
    fn one_bit_mode_stores_single_bit_per_entry() {
        let image = filled(params(1, 0.0, 0.0), 99);
        let bytes = encode(&image);
        assert_eq!(bytes.len(), HEADER_LEN + 256 / 8);
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let image = filled(params(4, 1.0, 0.125), 7);
        let good = encode(&image);
        // Flip one payload bit: CRC catches it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(decode(&bad), Err(StoreError::Corrupt(_))));
        // Truncations anywhere never panic.
        for cut in 0..good.len() {
            let _ = decode(&good[..cut]);
        }
        // Bad magic / version / ranges.
        let mut m = good.clone();
        m[0] = b'X';
        assert!(decode(&m).is_err());
        let mut v = good.clone();
        v[8] = 9;
        assert!(decode(&v).is_err());
        let mut b = good.clone();
        b[12] = 60; // 2^60 entries: rejected before any allocation
        assert!(decode(&b).is_err());
    }

    #[test]
    fn apply_record_matches_saturating_observe() {
        let mut image = TableImage::empty(params(2, 1.0, 1.0));
        for _ in 0..10 {
            image.apply_record(5, true);
            image.apply_record(5, false);
        }
        assert_eq!(image.cells[5], (3, 3)); // 2-bit max
        image.apply_record(0x105, true); // aliases onto entry 5
        assert_eq!(image.cells[5], (3, 3));
        // 1-bit mode ignores free records entirely.
        let mut one = TableImage::empty(params(1, 0.0, 0.0));
        one.apply_record(9, false);
        assert_eq!(one.occupancy(), 0);
        one.apply_record(9, true);
        assert_eq!(one.cells[9], (1, 0));
    }

    #[test]
    fn merge_max_is_a_join() {
        let p = params(4, 1.0, 0.125);
        let a = filled(p, 11);
        let b = filled(p, 23);
        let mut ab = a.clone();
        ab.merge_max(&b).unwrap();
        let mut ba = b.clone();
        ba.merge_max(&a).unwrap();
        // Commutative on cells (u_state is last-writer-wins, so compare
        // cells only across orders) and idempotent.
        assert_eq!(ab.cells, ba.cells);
        let snap = ab.clone();
        ab.merge_max(&b).unwrap();
        assert_eq!(ab, snap, "duplicate merge must be a no-op");
        for (i, &(c, n)) in ab.cells.iter().enumerate() {
            assert_eq!(c, a.cells[i].0.max(b.cells[i].0));
            assert_eq!(n, a.cells[i].1.max(b.cells[i].1));
        }
    }

    #[test]
    fn merge_max_u_state_prefers_live_lineage() {
        let p = params(2, 1.0, 1.0);
        let mut unknown = TableImage::empty(p);
        let mut known = TableImage::empty(p);
        known.u_state = 77;
        unknown.merge_max(&known).unwrap();
        assert_eq!(unknown.u_state, 77, "unknown RNG word adopts the peer's");
        let mut live = TableImage::empty(p);
        live.u_state = 5;
        live.merge_max(&known).unwrap();
        assert_eq!(live.u_state, 5, "live RNG word is kept");
    }

    #[test]
    fn merge_max_rejects_mismatched_params() {
        let mut a = TableImage::empty(params(2, 1.0, 1.0));
        let b = TableImage::empty(params(4, 1.0, 1.0));
        assert!(matches!(a.merge_max(&b), Err(StoreError::Mismatch(_))));
    }

    #[test]
    fn cht_roundtrip_is_bit_exact() {
        let mut cht = Cht::new(params(4, 1.0, 1.0), 11);
        for code in 0..200u64 {
            cht.observe(code * 3, code % 2 == 0);
        }
        let image = TableImage::from_cht(&cht);
        let back = decode(&encode(&image)).unwrap();
        let mut restored = Cht::new(params(4, 1.0, 1.0), 11);
        back.apply_to_cht(&mut restored);
        for code in 0..256u64 {
            assert_eq!(restored.counters(code), cht.counters(code));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "copred-store-snap-{}-{:x}",
            std::process::id(),
            0x51AB_u32
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        let image = filled(params(4, 1.0, 0.125), 31);
        let n = write_snapshot(&path, &image).unwrap();
        assert_eq!(n, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_snapshot(&path).unwrap(), image);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
