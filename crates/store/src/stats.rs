//! Store telemetry counters, rendered by the service as the
//! `copred_store_*` Prometheus series (a name-stability contract, see
//! ROADMAP.md).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for the persistence layer. All relaxed: these are
/// telemetry, never control flow.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Snapshots durably written (persist-on-close/evict + compactions).
    pub snapshots_written: AtomicU64,
    /// Snapshots successfully decoded on session open.
    pub snapshots_loaded: AtomicU64,
    /// Bytes appended to WAL segments (records + segment headers).
    pub wal_bytes: AtomicU64,
    /// Session opens that found a matching stored table.
    pub warm_hits: AtomicU64,
    /// Session opens that found no usable stored table.
    pub warm_misses: AtomicU64,
    /// Recovery events that replayed at least one WAL record on open.
    pub recovery_replays: AtomicU64,
}

impl StoreStats {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(field, value)` pairs in stable render order — the service's
    /// `STORE_COUNTERS` table indexes this by field name.
    pub fn stat_lines(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "snapshots_written",
                self.snapshots_written.load(Ordering::Relaxed),
            ),
            (
                "snapshots_loaded",
                self.snapshots_loaded.load(Ordering::Relaxed),
            ),
            ("wal_bytes", self.wal_bytes.load(Ordering::Relaxed)),
            ("warm_hits", self.warm_hits.load(Ordering::Relaxed)),
            ("warm_misses", self.warm_misses.load(Ordering::Relaxed)),
            (
                "recovery_replays",
                self.recovery_replays.load(Ordering::Relaxed),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_lines_order_is_stable() {
        let s = StoreStats::new();
        s.warm_hits.store(3, Ordering::Relaxed);
        let lines = s.stat_lines();
        let names: Vec<_> = lines.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "snapshots_written",
                "snapshots_loaded",
                "wal_bytes",
                "warm_hits",
                "warm_misses",
                "recovery_replays"
            ]
        );
        assert_eq!(lines[3], ("warm_hits", 3));
    }
}
