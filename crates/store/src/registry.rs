//! The fingerprint-keyed store registry and per-session store handles.
//!
//! On-disk layout: one directory per environment fingerprint under the
//! store root, holding a snapshot plus WAL segments:
//!
//! ```text
//! <root>/<fp as 16 hex digits>/snapshot.bin
//! <root>/<fp as 16 hex digits>/wal-000000.log …
//! ```
//!
//! **Copy-on-lease**: opening a session copies the stored image into the
//! session's private shard — stored state and live shards never alias. The
//! *first* concurrent session per fingerprint owns the write side (WAL
//! appends + persist); later sessions on the same fingerprint get a
//! *detached* handle (warm copy, no writeback) so two writers can never
//! interleave one log. Ownership returns to the pool when the owning
//! handle drops.

use crate::snapshot::{read_snapshot, write_snapshot, TableImage};
use crate::stats::StoreStats;
use crate::wal::{self, Wal, WalRecord};
use crate::StoreError;
use copred_core::ChtParams;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Default WAL segment rotation size.
pub const DEFAULT_SEGMENT_LIMIT: u64 = 64 * 1024;

/// Default segment count that triggers compaction into a snapshot.
pub const DEFAULT_COMPACT_SEGMENTS: u64 = 4;

/// Outcome of opening a session against the store.
#[derive(Debug)]
pub struct OpenedStore {
    /// The stored table to warm-start from, when one was found.
    pub image: Option<TableImage>,
    /// The session's handle for WAL appends and persistence.
    pub store: SessionStore,
}

/// A fingerprint-keyed registry of persisted CHT tables.
#[derive(Debug)]
pub struct StoreRegistry {
    root: PathBuf,
    stats: Arc<StoreStats>,
    active: Arc<Mutex<HashSet<u64>>>,
    segment_limit: u64,
    compact_segments: u64,
}

impl StoreRegistry {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(StoreRegistry {
            root,
            stats: Arc::new(StoreStats::new()),
            active: Arc::new(Mutex::new(HashSet::new())),
            segment_limit: DEFAULT_SEGMENT_LIMIT,
            compact_segments: DEFAULT_COMPACT_SEGMENTS,
        })
    }

    /// Overrides the WAL rotation/compaction thresholds (tests exercise
    /// rotation with tiny segments).
    pub fn with_wal_limits(mut self, segment_limit: u64, compact_segments: u64) -> Self {
        self.segment_limit = segment_limit;
        self.compact_segments = compact_segments.max(1);
        self
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Shared telemetry counters.
    pub fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }

    fn table_dir(&self, fp: u64) -> PathBuf {
        self.root.join(format!("{fp:016x}"))
    }

    /// Reads the stored table for `fp` without leasing it: snapshot (when
    /// present, valid, and parameter-matching) plus WAL-suffix replay.
    /// Returns `None` when nothing usable is stored — corruption and
    /// parameter mismatches degrade to a cold start, never an error.
    pub fn load(&self, fp: u64, params: &ChtParams) -> Option<TableImage> {
        let _store_stage = copred_obs::stage(copred_obs::Stage::Store);
        let dir = self.table_dir(fp);
        let snap = dir.join("snapshot.bin");
        let mut snapshot_loaded = false;
        let base = match read_snapshot(&snap) {
            Ok(image) if image.params == *params => {
                snapshot_loaded = true;
                Some(image)
            }
            // Mismatched parameters or a corrupt snapshot: the stored state
            // is for a different table shape (or unreadable) — cold start,
            // and skip the WAL too since its records target that table.
            Ok(_) => return None,
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => return None,
        };
        let mut image = base.unwrap_or_else(|| TableImage::empty(*params));
        let summary = wal::replay(&dir, &mut image);
        if snapshot_loaded {
            self.stats.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
        }
        if summary.applied > 0 {
            self.stats.recovery_replays.fetch_add(1, Ordering::Relaxed);
        }
        if snapshot_loaded || summary.applied > 0 {
            Some(image)
        } else {
            None
        }
    }

    /// Merges a replicated table image into the stored state for `fp` —
    /// the receiving half of fleet warm-state replication. The stored
    /// snapshot plus WAL suffix (exactly what a warm open would load) is
    /// max-merged into `incoming` and written back as a fresh snapshot,
    /// after which the folded WAL segments are cleared. Stored state with
    /// *different* parameters is stale by the same rule [`load`](Self::load)
    /// uses and is replaced outright; corrupt stored state likewise.
    ///
    /// Returns `true` when usable stored state was merged in, `false` when
    /// the incoming image was installed fresh.
    ///
    /// # Errors
    ///
    /// [`StoreError::Leased`] when a live session owns `fp`'s write side
    /// (merging under it would interleave two writers — the pusher treats
    /// this as a soft rejection), or any I/O error from the snapshot/WAL
    /// writes. Either way the stored state stays cold-startable.
    pub fn merge_image(&self, fp: u64, incoming: &TableImage) -> Result<bool, StoreError> {
        let _store_stage = copred_obs::stage(copred_obs::Stage::Store);
        // Take the lease for the duration of the merge so a concurrent
        // open cannot start a WAL this merge would then clear.
        if !self.active.lock().expect("active set poisoned").insert(fp) {
            return Err(StoreError::Leased(fp));
        }
        let result = self.merge_image_locked(fp, incoming);
        self.active.lock().expect("active set poisoned").remove(&fp);
        result
    }

    fn merge_image_locked(&self, fp: u64, incoming: &TableImage) -> Result<bool, StoreError> {
        let mut merged = incoming.clone();
        let had_state = match self.load(fp, &incoming.params) {
            Some(existing) => {
                merged.merge_max(&existing)?;
                true
            }
            None => false,
        };
        let dir = self.table_dir(fp);
        std::fs::create_dir_all(&dir)?;
        write_snapshot(&dir.join("snapshot.bin"), &merged)?;
        self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
        // The WAL suffix (if any) is folded into the snapshot now; clear it
        // so a later open does not replay it on top a second time.
        Wal::open(&dir, self.segment_limit)?.reset()?;
        Ok(had_state)
    }

    /// Opens the store for a session planning under fingerprint `fp`.
    ///
    /// Returns the warm-start image (if any) and a [`SessionStore`] handle.
    /// The first live session per fingerprint owns the write side; later
    /// concurrent sessions get a detached handle (reads the warm copy,
    /// never writes back). Warm-hit/miss telemetry is counted here.
    pub fn open_session(&self, fp: u64, params: &ChtParams) -> std::io::Result<OpenedStore> {
        let image = self.load(fp, params);
        if image.is_some() {
            self.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.warm_misses.fetch_add(1, Ordering::Relaxed);
        }
        let owner = self.active.lock().expect("active set poisoned").insert(fp);
        let dir = self.table_dir(fp);
        let wal = if owner {
            Some(Wal::open(&dir, self.segment_limit)?)
        } else {
            None
        };
        Ok(OpenedStore {
            image,
            store: SessionStore {
                fp,
                dir,
                params: *params,
                wal: Mutex::new(wal),
                stats: Arc::clone(&self.stats),
                active: Arc::clone(&self.active),
                compact_segments: self.compact_segments,
            },
        })
    }
}

/// One session's handle into the store. Owner handles append to the WAL
/// and persist snapshots; detached handles (a concurrent session on the
/// same fingerprint) treat both as no-ops.
#[derive(Debug)]
pub struct SessionStore {
    fp: u64,
    dir: PathBuf,
    params: ChtParams,
    /// `Some` iff this handle owns the fingerprint's write side.
    wal: Mutex<Option<Wal>>,
    stats: Arc<StoreStats>,
    active: Arc<Mutex<HashSet<u64>>>,
    compact_segments: u64,
}

impl SessionStore {
    /// The environment fingerprint this handle persists under.
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// Whether this handle owns the write side.
    pub fn is_owner(&self) -> bool {
        self.wal.lock().expect("wal poisoned").is_some()
    }

    /// The table parameters the store was opened with.
    pub fn params(&self) -> &ChtParams {
        &self.params
    }

    /// Logs one applied observe write. When segment rotation pushes the log
    /// past the compaction threshold, folds the WAL into a fresh snapshot
    /// using `image_fn` (called under the WAL lock, so the image is
    /// consistent with everything logged so far). Detached handles no-op.
    pub fn log_observe(
        &self,
        code: u64,
        colliding: bool,
        image_fn: impl FnOnce() -> TableImage,
    ) -> Result<(), StoreError> {
        let mut guard = self.wal.lock().expect("wal poisoned");
        let Some(wal) = guard.as_mut() else {
            return Ok(());
        };
        let written = wal.append(WalRecord { code, colliding })?;
        self.stats.wal_bytes.fetch_add(written, Ordering::Relaxed);
        if wal.segments_started() > self.compact_segments {
            let image = image_fn();
            write_snapshot(&self.dir.join("snapshot.bin"), &image)?;
            self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
            wal.reset()?;
        }
        Ok(())
    }

    /// Persists the table image as a snapshot and truncates the WAL —
    /// called on session close and eviction. Returns `Ok(false)` on a
    /// detached handle (nothing written).
    pub fn persist(&self, image: &TableImage) -> Result<bool, StoreError> {
        let _store_stage = copred_obs::stage(copred_obs::Stage::Store);
        let mut guard = self.wal.lock().expect("wal poisoned");
        let Some(wal) = guard.as_mut() else {
            return Ok(false);
        };
        write_snapshot(&self.dir.join("snapshot.bin"), image)?;
        self.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
        wal.reset()?;
        Ok(true)
    }
}

impl Drop for SessionStore {
    fn drop(&mut self) {
        if self.is_owner() {
            self.active
                .lock()
                .expect("active set poisoned")
                .remove(&self.fp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_core::Strategy;

    fn params() -> ChtParams {
        ChtParams {
            bits: 8,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copred-store-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn stat(registry: &StoreRegistry, name: &str) -> u64 {
        registry
            .stats()
            .stat_lines()
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1
    }

    #[test]
    fn cold_miss_then_warm_hit_roundtrip() {
        let root = tmp_root("warm");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0xFEED;
        let opened = registry.open_session(fp, &params()).unwrap();
        assert!(opened.image.is_none());
        assert!(opened.store.is_owner());
        assert_eq!(stat(&registry, "warm_misses"), 1);
        let mut image = TableImage::empty(params());
        image.u_state = 99;
        image.cells[3] = (5, 1);
        assert!(opened.store.persist(&image).unwrap());
        drop(opened);
        let again = registry.open_session(fp, &params()).unwrap();
        assert_eq!(again.image.as_ref(), Some(&image));
        assert_eq!(stat(&registry, "warm_hits"), 1);
        assert_eq!(stat(&registry, "snapshots_loaded"), 1);
        assert_eq!(stat(&registry, "snapshots_written"), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wal_suffix_replays_on_load() {
        let root = tmp_root("replay");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0xBEEF;
        let opened = registry.open_session(fp, &params()).unwrap();
        let mut live = TableImage::empty(params());
        for i in 0..30u64 {
            opened
                .store
                .log_observe(i, i % 2 == 0, || unreachable!("no compaction yet"))
                .unwrap();
            live.apply_record(i, i % 2 == 0);
        }
        // Simulate a crash: drop without persist. The WAL alone must
        // reconstruct the table.
        drop(opened);
        let recovered = registry.load(fp, &params()).unwrap();
        assert_eq!(recovered.cells, live.cells);
        assert_eq!(stat(&registry, "recovery_replays"), 1);
        assert!(stat(&registry, "wal_bytes") >= 30 * WAL_RECORD_LEN_U64);
        std::fs::remove_dir_all(&root).unwrap();
    }

    const WAL_RECORD_LEN_U64: u64 = crate::wal::WAL_RECORD_LEN as u64;

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let root = tmp_root("compact");
        // Two records per segment, compact at >2 segments.
        let registry = StoreRegistry::open(&root)
            .unwrap()
            .with_wal_limits(8 + 2 * WAL_RECORD_LEN_U64, 2);
        let fp = 0xC0FFEE;
        let opened = registry.open_session(fp, &params()).unwrap();
        let mut live = TableImage::empty(params());
        for i in 0..12u64 {
            live.apply_record(i, true);
            let snapshot = live.clone();
            opened.store.log_observe(i, true, move || snapshot).unwrap();
        }
        assert!(
            stat(&registry, "snapshots_written") >= 1,
            "compaction must have produced a snapshot"
        );
        drop(opened);
        // Recovery sees snapshot + post-compaction WAL suffix == live.
        let recovered = registry.load(fp, &params()).unwrap();
        assert_eq!(recovered.cells, live.cells);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_same_fp_sessions_are_copy_on_lease() {
        let root = tmp_root("detach");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0xAA;
        let first = registry.open_session(fp, &params()).unwrap();
        let second = registry.open_session(fp, &params()).unwrap();
        assert!(first.store.is_owner());
        assert!(!second.store.is_owner(), "second concurrent lease detaches");
        // Detached writes are no-ops.
        second
            .store
            .log_observe(1, true, || TableImage::empty(params()))
            .unwrap();
        assert!(!second.store.persist(&TableImage::empty(params())).unwrap());
        assert_eq!(stat(&registry, "wal_bytes"), 0);
        // Ownership returns when the owner drops.
        drop(first);
        let third = registry.open_session(fp, &params()).unwrap();
        assert!(third.store.is_owner());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_image_folds_stored_state_and_clears_wal() {
        let root = tmp_root("merge");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0x11AD;
        // Seed stored state via a session that crashes (WAL only).
        let opened = registry.open_session(fp, &params()).unwrap();
        for i in 0..8u64 {
            opened
                .store
                .log_observe(i, true, || unreachable!("no compaction"))
                .unwrap();
        }
        drop(opened); // no persist: state lives in the WAL suffix
        let mut incoming = TableImage::empty(params());
        incoming.u_state = 41;
        incoming.cells[3] = (9, 2);
        assert!(registry.merge_image(fp, &incoming).unwrap());
        let loaded = registry.load(fp, &params()).unwrap();
        assert_eq!(loaded.cells[3], (9, 2), "incoming cell present");
        assert_eq!(loaded.cells[5], (1, 0), "WAL suffix folded in");
        assert_eq!(loaded.u_state, 41, "incoming lineage's RNG word wins");
        // Duplicate push converges: merging the same image changes nothing.
        registry.merge_image(fp, &incoming).unwrap();
        assert_eq!(registry.load(fp, &params()).unwrap(), loaded);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_image_installs_fresh_on_cold_or_mismatched_store() {
        let root = tmp_root("merge-cold");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0x22BE;
        let mut incoming = TableImage::empty(params());
        incoming.cells[0] = (2, 1);
        assert!(
            !registry.merge_image(fp, &incoming).unwrap(),
            "nothing stored: fresh install"
        );
        assert_eq!(registry.load(fp, &params()).unwrap().cells[0], (2, 1));
        // Stored state under different parameters is stale (same rule as
        // load): the incoming image replaces it rather than erroring.
        let other = ChtParams {
            counter_bits: 2,
            ..params()
        };
        let mut reshaped = TableImage::empty(other);
        reshaped.cells[7] = (3, 0);
        assert!(!registry.merge_image(fp, &reshaped).unwrap());
        assert_eq!(registry.load(fp, &other).unwrap().cells[7], (3, 0));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn merge_image_rejects_leased_fingerprint() {
        let root = tmp_root("merge-leased");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0x33CF;
        let opened = registry.open_session(fp, &params()).unwrap();
        assert!(opened.store.is_owner());
        let incoming = TableImage::empty(params());
        assert!(matches!(
            registry.merge_image(fp, &incoming),
            Err(StoreError::Leased(f)) if f == fp
        ));
        // The lease returns with the owner; the merge then succeeds.
        drop(opened);
        assert!(registry.merge_image(fp, &incoming).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn mismatched_params_degrade_to_cold() {
        let root = tmp_root("mismatch");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0x77;
        let opened = registry.open_session(fp, &params()).unwrap();
        let image = TableImage::empty(params());
        opened.store.persist(&image).unwrap();
        drop(opened);
        let other = ChtParams {
            counter_bits: 2,
            ..params()
        };
        assert!(registry.load(fp, &other).is_none());
        let reopened = registry.open_session(fp, &other).unwrap();
        assert!(reopened.image.is_none(), "mismatch is a cold start");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_snapshot_degrades_to_cold() {
        let root = tmp_root("corrupt");
        let registry = StoreRegistry::open(&root).unwrap();
        let fp = 0x99;
        let opened = registry.open_session(fp, &params()).unwrap();
        let mut image = TableImage::empty(params());
        image.cells[0] = (1, 0);
        opened.store.persist(&image).unwrap();
        drop(opened);
        let snap = registry
            .root()
            .join(format!("{fp:016x}"))
            .join("snapshot.bin");
        let mut bytes = std::fs::read(&snap).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        assert!(registry.load(fp, &params()).is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
