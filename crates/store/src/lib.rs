//! Persistent CHT state: snapshots, write-ahead log, and
//! environment-fingerprinted warm-start.
//!
//! COORD's benefit comes from the Collision History Table warming up over a
//! planning episode; this crate makes that learned state durable so it
//! survives session eviction, server restarts, and crashes:
//!
//! - [`snapshot`]: a versioned, CRC-protected binary image of a table
//!   ([`TableImage`]), bit-exact across every counter width including the
//!   1-bit `S = 0` mode.
//! - [`wal`]: an append-only log of *applied* observe writes with segment
//!   rotation and torn-tail-tolerant replay. Only applied writes are logged
//!   (see `ConcurrentCht::observe`'s return value), so replay is a pure
//!   saturating increment — no RNG state needed to reproduce the table.
//! - [`fingerprint`]: a stable hash over robot model + obstacle set keying
//!   the [`StoreRegistry`], so a new session planning in a known environment
//!   warm-starts from the fleet's accumulated table instead of cold.
//! - [`registry`]: directory layout, copy-on-lease ownership (concurrent
//!   sessions with the same fingerprint never alias a mutable shard), and
//!   crash recovery (`snapshot + WAL-suffix replay ≡ live table`).
//!
//! Format stability: the snapshot header (`CPRDSNAP`, version 1) and WAL
//! segment format (`CPRDWAL1`, 10-byte records) are a compatibility
//! contract — see ROADMAP.md. Everything is std-only, like the BENCH JSON.

pub mod crc;
pub mod fingerprint;
pub mod registry;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use fingerprint::environment_fingerprint;
pub use registry::{OpenedStore, SessionStore, StoreRegistry};
pub use snapshot::{read_snapshot, write_snapshot, TableImage, SNAPSHOT_VERSION};
pub use stats::StoreStats;
pub use wal::{Wal, WalRecord, WAL_RECORD_LEN};

use std::fmt;

/// Errors from the persistence layer. Corruption is a recoverable condition
/// (the store falls back to a cold start), never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The bytes on disk do not decode (bad magic/version/CRC/length).
    Corrupt(String),
    /// The decoded image exists but does not match the requested table
    /// parameters — treated as a cold miss by the registry.
    Mismatch(String),
    /// The fingerprint is leased by a live session that owns its write
    /// side; a replication merge under it would interleave two writers.
    /// The pusher retries after the lease is released (or drops the push —
    /// replication is best-effort).
    Leased(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt: {m}"),
            StoreError::Mismatch(m) => write!(f, "mismatch: {m}"),
            StoreError::Leased(fp) => write!(f, "fingerprint {fp:016x} is leased"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
