//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding snapshot payloads. Hand-rolled and std-only like the rest of the
//! workspace; the lookup table is built at compile time.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        data[17] ^= 0x04;
        assert_ne!(crc32(&data), base);
    }
}
