//! Stable environment fingerprints: the key a warm-startable table is
//! stored under.
//!
//! A fingerprint folds the robot model (name, DOFs, per-DOF limits, link
//! count, workspace box) and the obstacle set (every AABB, in order)
//! through 64-bit FNV-1a over exact `f64` bit patterns. Two sessions get
//! the same fingerprint iff they plan the same robot against the same
//! obstacles — exactly the condition under which learned CHT state
//! transfers. The hash is pure arithmetic over the inputs (no pointer,
//! time, or platform dependence), so it is stable across processes and
//! restarts and can be computed client-side.

use copred_collision::Environment;
use copred_geometry::Aabb;
use copred_kinematics::Robot;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a hasher over byte chunks.
#[derive(Debug, Clone, Copy)]
pub struct Fold(u64);

impl Fold {
    /// Fresh hasher.
    pub fn new() -> Self {
        Fold(FNV_OFFSET)
    }

    /// Folds raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds an `f64` by exact bit pattern.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    fn aabb(self, b: &Aabb) -> Self {
        self.f64(b.min.x)
            .f64(b.min.y)
            .f64(b.min.z)
            .f64(b.max.x)
            .f64(b.max.y)
            .f64(b.max.z)
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fold {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of a (robot, environment) pair.
pub fn environment_fingerprint(robot: &Robot, env: &Environment) -> u64 {
    let mut f = Fold::new()
        .bytes(robot.name().as_bytes())
        .u64(robot.dofs() as u64)
        .u64(robot.link_count() as u64);
    for i in 0..robot.dofs() {
        let (lo, hi) = robot.limits(i);
        f = f.f64(lo).f64(hi);
    }
    f = f.aabb(&robot.workspace());
    f = f.aabb(env.workspace());
    f = f.u64(env.obstacles().len() as u64);
    for obstacle in env.obstacles() {
        f = f.aabb(obstacle);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::Vec3;
    use copred_kinematics::presets;

    fn env(obstacles: Vec<Aabb>) -> Environment {
        let ws = Aabb {
            min: Vec3 {
                x: -2.0,
                y: -2.0,
                z: -2.0,
            },
            max: Vec3 {
                x: 2.0,
                y: 2.0,
                z: 2.0,
            },
        };
        Environment::new(ws, obstacles)
    }

    fn obstacle(x: f64) -> Aabb {
        Aabb {
            min: Vec3 { x, y: 0.0, z: 0.0 },
            max: Vec3 {
                x: x + 0.5,
                y: 0.5,
                z: 0.5,
            },
        }
    }

    #[test]
    fn identical_inputs_identical_fingerprints() {
        let robot: Robot = presets::jaco2().into();
        let a = environment_fingerprint(&robot, &env(vec![obstacle(0.3)]));
        let b = environment_fingerprint(&robot, &env(vec![obstacle(0.3)]));
        assert_eq!(a, b);
    }

    #[test]
    fn any_input_change_changes_the_fingerprint() {
        let robot: Robot = presets::jaco2().into();
        let base = environment_fingerprint(&robot, &env(vec![obstacle(0.3)]));
        // Moved obstacle.
        assert_ne!(
            base,
            environment_fingerprint(&robot, &env(vec![obstacle(0.31)]))
        );
        // Added obstacle.
        assert_ne!(
            base,
            environment_fingerprint(&robot, &env(vec![obstacle(0.3), obstacle(1.0)]))
        );
        // Empty scene.
        assert_ne!(base, environment_fingerprint(&robot, &env(vec![])));
        // Different robot.
        let other: Robot = presets::kuka_iiwa().into();
        assert_ne!(
            base,
            environment_fingerprint(&other, &env(vec![obstacle(0.3)]))
        );
    }

    #[test]
    fn fnv_fold_matches_reference() {
        // FNV-1a 64-bit reference vector.
        assert_eq!(Fold::new().bytes(b"").finish(), 0xCBF2_9CE4_8422_2325);
        assert_eq!(Fold::new().bytes(b"a").finish(), 0xAF63_DC4C_8601_EC8C);
    }
}
