//! # copred
//!
//! Facade crate for the COORD collision-prediction reproduction
//! ("Collision Prediction for Robotics Accelerators", ISCA 2024).
//! Re-exports every subsystem under one roof:
//!
//! * [`geometry`] — vectors, transforms, OBB/sphere/AABB, voxels, octrees;
//! * [`kinematics`] — DH forward kinematics and the evaluated robots;
//! * [`collision`] — environments, CDQ decomposition, reference schedulers;
//! * [`core`] — the COORD predictor: hashes, CHT, Algorithm 1, metrics;
//! * [`envgen`] — calibrated benchmark scenes, suites B1–B6, G1–G5 groups;
//! * [`planners`] — MPNet/GNNMP emulators, BIT*, RRT(-Connect), PRM;
//! * [`trace`] — CDQ trace capture, serialization, replay;
//! * [`swexec`] — CPU threads + GPU wavefront software models;
//! * [`accel`] — the cycle-level COPU+CDU simulator and energy/area models;
//! * [`service`] — the batched, session-sharded collision-prediction
//!   server (TCP wire protocol, worker pool with backpressure, load
//!   generator and op-log replay).
//!
//! ## Quickstart
//!
//! ```
//! use copred::core::Predictor;
//! use copred::collision::Environment;
//! use copred::geometry::{Aabb, Vec3};
//! use copred::kinematics::{presets, Config, Motion, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(0.2, -1.0, -0.1), Vec3::new(0.6, 1.0, 0.1))],
//! );
//! let mut predictor = Predictor::coord_default(&robot, 42);
//! let poses = Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0]))
//!     .discretize(17);
//! let outcome = predictor.check_motion(&robot, &env, &poses);
//! assert!(outcome.colliding);
//! ```

pub use copred_accel as accel;
pub use copred_collision as collision;
pub use copred_core as core;
pub use copred_envgen as envgen;
pub use copred_geometry as geometry;
pub use copred_kinematics as kinematics;
pub use copred_planners as planners;
pub use copred_service as service;
pub use copred_swexec as swexec;
pub use copred_trace as trace;
